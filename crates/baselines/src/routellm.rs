//! The RouteLLM baseline [Ong et al.]: an offline-trained win-probability
//! classifier with threshold routing.
//!
//! RouteLLM learns `P(small model's answer is preferred)` from preference
//! data and routes to the small model when that probability clears a
//! threshold. Unlike IC-Cache's router it is (i) trained offline — no
//! online adaptation — and (ii) oblivious to serving load (§6.2: "it is
//! oblivious to the current system load").

use ic_llmsim::{ModelId, Request};
use ic_stats::sigmoid;
use rand::rngs::StdRng;

use crate::always::RoutePolicy;

/// Feature count of the classifier (bias, complexity, log-lengths, task
/// one-hot).
const DIM: usize = 9;

fn features(r: &Request) -> [f64; DIM] {
    let mut f = [0.0; DIM];
    f[0] = 1.0;
    f[1] = r.complexity_signal;
    f[2] = (f64::from(r.input_tokens).ln() / 9.0).clamp(0.0, 1.0);
    f[3] = (f64::from(r.target_output_tokens).ln() / 9.0).clamp(0.0, 1.0);
    for (i, task) in ic_llmsim::TaskKind::ALL.iter().enumerate() {
        f[4 + i] = if r.task == *task { 1.0 } else { 0.0 };
    }
    f
}

/// The RouteLLM router.
///
/// # Examples
///
/// ```
/// use ic_llmsim::ModelId;
/// use ic_baselines::RouteLlm;
///
/// let router = RouteLlm::new(ModelId(0), ModelId(1), 0.5);
/// assert_eq!(router.threshold(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct RouteLlm {
    weights: [f64; DIM],
    small: ModelId,
    large: ModelId,
    threshold: f64,
    label: String,
}

impl RouteLlm {
    /// Creates an untrained router (predicts 0.5 everywhere).
    pub fn new(small: ModelId, large: ModelId, threshold: f64) -> Self {
        Self {
            weights: [0.0; DIM],
            small,
            large,
            threshold,
            label: "routellm".to_owned(),
        }
    }

    /// The routing threshold on `P(small wins)`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Adjusts the threshold (the knob swept in Fig. 13).
    pub fn set_threshold(&mut self, t: f64) {
        self.threshold = t.clamp(0.0, 1.0);
    }

    /// Offline training on labeled preference data: `(request, small_won)`
    /// pairs, logistic regression by SGD.
    pub fn train(&mut self, data: &[(&Request, bool)], epochs: usize, lr: f64) {
        for _ in 0..epochs {
            for (r, small_won) in data {
                let x = features(r);
                let p = sigmoid(
                    self.weights
                        .iter()
                        .zip(&x)
                        .map(|(w, xi)| w * xi)
                        .sum::<f64>(),
                );
                let err = p - if *small_won { 1.0 } else { 0.0 };
                for (w, xi) in self.weights.iter_mut().zip(&x) {
                    *w -= lr * err * xi;
                }
            }
        }
    }

    /// Predicted probability that the small model's answer is preferred.
    pub fn predict_small_win(&self, request: &Request) -> f64 {
        let x = features(request);
        sigmoid(
            self.weights
                .iter()
                .zip(&x)
                .map(|(w, xi)| w * xi)
                .sum::<f64>(),
        )
    }

    /// Routes one request (load-oblivious).
    pub fn route(&self, request: &Request) -> ModelId {
        if self.predict_small_win(request) >= self.threshold {
            self.small
        } else {
            self.large
        }
    }
}

impl RoutePolicy for RouteLlm {
    fn choose(&mut self, request: &Request, _load_rps: f64, _rng: &mut StdRng) -> ModelId {
        self.route(request)
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_judge::Autorater;
    use ic_llmsim::{GenSetup, Generator, ModelSpec};
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    /// Builds RouteLLM's training data the way the cited system does:
    /// generate with both models, judge, record who won.
    fn preference_data(
        wg: &mut WorkloadGenerator,
        n: usize,
        seed: u64,
    ) -> (Vec<Request>, Vec<bool>) {
        let generator = Generator::new();
        let judge = Autorater::standard();
        let small = ModelSpec::gemma_2_2b();
        let large = ModelSpec::gemma_2_27b();
        let mut rng = rng_from_seed(seed);
        let requests = wg.generate_requests(n);
        let labels = requests
            .iter()
            .map(|r| {
                let qs = generator
                    .generate(&small, r, &GenSetup::bare(), &mut rng)
                    .quality;
                let ql = generator
                    .generate(&large, r, &GenSetup::bare(), &mut rng)
                    .quality;
                judge.score_balanced(qs, ql, 4, &mut rng) >= 0.0
            })
            .collect();
        (requests, labels)
    }

    #[test]
    fn untrained_router_predicts_half() {
        let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 101);
        let r = wg.generate_requests(1).pop().unwrap();
        let router = RouteLlm::new(ModelId(0), ModelId(1), 0.5);
        assert!((router.predict_small_win(&r) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn training_learns_difficulty_signal() {
        let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 102);
        let (requests, labels) = preference_data(&mut wg, 800, 103);
        let data: Vec<(&Request, bool)> = requests.iter().zip(labels.iter().copied()).collect();
        let mut router = RouteLlm::new(ModelId(0), ModelId(1), 0.5);
        router.train(&data, 30, 0.1);
        // Easy requests should get higher small-win probability than hard
        // ones (the classifier reads the complexity signal).
        let eval = wg.generate_requests(400);
        let mut easy = Vec::new();
        let mut hard = Vec::new();
        for r in &eval {
            if r.difficulty < 0.45 {
                easy.push(router.predict_small_win(r));
            } else if r.difficulty > 0.75 {
                hard.push(router.predict_small_win(r));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&easy) > mean(&hard) + 0.05,
            "classifier should separate: easy {} vs hard {}",
            mean(&easy),
            mean(&hard)
        );
    }

    #[test]
    fn threshold_controls_offload_fraction() {
        let mut wg = WorkloadGenerator::new(Dataset::NaturalQuestions, 104);
        let (requests, labels) = preference_data(&mut wg, 500, 105);
        let data: Vec<(&Request, bool)> = requests.iter().zip(labels.iter().copied()).collect();
        let mut router = RouteLlm::new(ModelId(0), ModelId(1), 0.5);
        router.train(&data, 30, 0.1);
        let eval = wg.generate_requests(300);
        let offload_at = |router: &RouteLlm| {
            eval.iter()
                .filter(|r| router.route(r) == ModelId(0))
                .count()
        };
        let mid = offload_at(&router);
        router.set_threshold(0.05);
        let aggressive = offload_at(&router);
        router.set_threshold(0.95);
        let conservative = offload_at(&router);
        assert!(aggressive >= mid);
        assert!(mid >= conservative);
        assert!(aggressive > conservative, "threshold must matter");
    }

    #[test]
    fn routing_is_load_oblivious() {
        let mut wg = WorkloadGenerator::new(Dataset::Alpaca, 106);
        let r = wg.generate_requests(1).pop().unwrap();
        let mut router = RouteLlm::new(ModelId(0), ModelId(1), 0.5);
        let mut rng = rng_from_seed(107);
        let at_low = router.choose(&r, 0.0, &mut rng);
        let at_high = router.choose(&r, 1_000.0, &mut rng);
        assert_eq!(at_low, at_high, "RouteLLM must ignore load");
    }
}
