//! Static routing policies and the shared policy trait.

use ic_llmsim::{ModelId, Request};
use rand::RngExt;
use rand::rngs::StdRng;

/// A routing policy: picks a model for each request.
///
/// IC-Cache's own router lives in `ic-router` (it needs richer inputs);
/// this trait covers the baselines that the end-to-end experiments sweep.
pub trait RoutePolicy {
    /// Chooses the serving model for `request` at the given offered load.
    fn choose(&mut self, request: &Request, load_rps: f64, rng: &mut StdRng) -> ModelId;

    /// Display name for experiment tables.
    fn name(&self) -> &str;
}

/// Always route to one fixed model.
#[derive(Debug, Clone)]
pub struct Always {
    model: ModelId,
    label: String,
}

impl Always {
    /// Creates the policy.
    pub fn new(model: ModelId, label: &str) -> Self {
        Self {
            model,
            label: label.to_owned(),
        }
    }
}

impl RoutePolicy for Always {
    fn choose(&mut self, _request: &Request, _load_rps: f64, _rng: &mut StdRng) -> ModelId {
        self.model
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Random splitter (used in sanity ablations).
#[derive(Debug, Clone)]
pub struct RandomSplit {
    models: Vec<ModelId>,
    label: String,
}

impl RandomSplit {
    /// Creates a uniform random splitter over the given models.
    ///
    /// # Panics
    ///
    /// Panics on an empty model list.
    pub fn new(models: Vec<ModelId>) -> Self {
        assert!(!models.is_empty(), "need at least one model");
        Self {
            models,
            label: "random-split".to_owned(),
        }
    }
}

impl RoutePolicy for RandomSplit {
    fn choose(&mut self, _request: &Request, _load_rps: f64, rng: &mut StdRng) -> ModelId {
        self.models[rng.random_range(0..self.models.len())]
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    #[test]
    fn always_is_constant() {
        let mut wg = WorkloadGenerator::new(Dataset::Alpaca, 91);
        let mut rng = rng_from_seed(1);
        let mut p = Always::new(ModelId(3), "always-large");
        for r in wg.generate_requests(10) {
            assert_eq!(p.choose(&r, 100.0, &mut rng), ModelId(3));
        }
        assert_eq!(p.name(), "always-large");
    }

    #[test]
    fn random_split_uses_all_models() {
        let mut wg = WorkloadGenerator::new(Dataset::Alpaca, 92);
        let mut rng = rng_from_seed(2);
        let mut p = RandomSplit::new(vec![ModelId(0), ModelId(1)]);
        let mut seen = std::collections::HashSet::new();
        for r in wg.generate_requests(50) {
            seen.insert(p.choose(&r, 0.0, &mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
