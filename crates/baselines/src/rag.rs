//! The LongRAG baseline (§6.1, Table 2).
//!
//! Retrieves external documents and appends the top-5 to the prompt. RAG
//! supplies piecemeal factual knowledge, so its boost concentrates on
//! knowledge-heavy requests and composes with (rather than replaces)
//! in-context examples — Table 2's `IC + RAG > IC > RAG` ordering.

use ic_llmsim::{RagDoc, Request};
use ic_workloads::RagCorpus;

/// The LongRAG retrieval pipeline.
///
/// # Examples
///
/// ```
/// use ic_baselines::LongRag;
/// use ic_workloads::{Dataset, WorkloadGenerator};
///
/// let mut rag = LongRag::standard(7);
/// let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 1);
/// let r = wg.generate_requests(1).pop().unwrap();
/// assert_eq!(rag.retrieve(&r).len(), 5);
/// ```
#[derive(Debug)]
pub struct LongRag {
    corpus: RagCorpus,
    k: usize,
}

impl LongRag {
    /// Creates a pipeline over a corpus with the given retrieval depth.
    pub fn new(corpus: RagCorpus, k: usize) -> Self {
        Self { corpus, k }
    }

    /// The paper's configuration: top-5 documents, realistic retrieval
    /// precision.
    pub fn standard(seed: u64) -> Self {
        Self::new(RagCorpus::new(0.75, seed), 5)
    }

    /// Retrieval depth.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Retrieves documents for one request.
    pub fn retrieve(&mut self, request: &Request) -> Vec<RagDoc> {
        self.corpus.retrieve(request, self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{GenSetup, Generator, ModelSpec};
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    #[test]
    fn rag_improves_small_model_on_qa() {
        let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 121);
        let mut rag = LongRag::standard(122);
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_2b();
        let mut rng = rng_from_seed(123);
        let mut bare_sum = 0.0;
        let mut rag_sum = 0.0;
        let requests = wg.generate_requests(300);
        for r in &requests {
            bare_sum += generator
                .generate(&spec, r, &GenSetup::bare(), &mut rng)
                .quality;
            let docs = rag.retrieve(r);
            rag_sum += generator
                .generate(&spec, r, &GenSetup::with_rag(docs), &mut rng)
                .quality;
        }
        let n = requests.len() as f64;
        assert!(
            rag_sum / n > bare_sum / n + 0.02,
            "RAG should lift QA quality: {} vs {}",
            bare_sum / n,
            rag_sum / n
        );
    }

    #[test]
    fn rag_documents_cost_prompt_tokens() {
        let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 124);
        let mut rag = LongRag::standard(125);
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_2b();
        let mut rng = rng_from_seed(126);
        let r = wg.generate_requests(1).pop().unwrap();
        let bare = generator.generate(&spec, &r, &GenSetup::bare(), &mut rng);
        let docs = rag.retrieve(&r);
        let with_rag = generator.generate(&spec, &r, &GenSetup::with_rag(docs), &mut rng);
        assert!(with_rag.input_tokens > bare.input_tokens + 400);
        assert!(with_rag.latency.ttft > bare.latency.ttft);
    }
}
