//! Supervised fine-tuning baseline (§6.4, Table 3, Fig. 15).
//!
//! The paper fine-tunes Gemma-2-2B on Natural Questions to imitate the
//! 27B model: quality improves in-domain but *regresses* out-of-domain
//! (Table 3: Alpaca win rate drops from 45.6% to 32.3% after NQ-only
//! SFT). The adapter models fine-tuned weights as a base-quality shift:
//! positive on the tuned task, negative elsewhere (catastrophic
//! forgetting), consumed through [`GenSetup::base_quality_shift`].
//!
//! [`GenSetup::base_quality_shift`]: ic_llmsim::GenSetup

use ic_llmsim::{Request, TaskKind};

/// A fine-tuned-model adapter.
#[derive(Debug, Clone)]
pub struct SftAdapter {
    /// The task family the model was tuned on.
    pub tuned_task: TaskKind,
    /// Base-quality gain on in-domain requests.
    pub in_domain_boost: f64,
    /// Base-quality loss on out-of-domain requests.
    pub ood_penalty: f64,
}

impl SftAdapter {
    /// The paper-calibrated adapter: modest in-domain gain (Fig. 15:
    /// 27.1% -> 29.5% win rate), marked OOD regression (Table 3).
    pub fn standard(tuned_task: TaskKind) -> Self {
        Self {
            tuned_task,
            in_domain_boost: 0.05,
            ood_penalty: 0.10,
        }
    }

    /// The base-quality shift for one request.
    pub fn shift(&self, request: &Request) -> f64 {
        if request.task == self.tuned_task {
            self.in_domain_boost
        } else {
            -self.ood_penalty
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{GenSetup, Generator, ModelSpec};
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn mean_quality(dataset: Dataset, shift: impl Fn(&Request) -> f64, seed: u64) -> f64 {
        let mut wg = WorkloadGenerator::new(dataset, 131);
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_2b();
        let mut rng = rng_from_seed(seed);
        let requests = wg.generate_requests(300);
        requests
            .iter()
            .map(|r| {
                let setup = GenSetup {
                    base_quality_shift: shift(r),
                    ..GenSetup::bare()
                };
                generator.generate(&spec, r, &setup, &mut rng).quality
            })
            .sum::<f64>()
            / requests.len() as f64
    }

    #[test]
    fn sft_helps_in_domain_table3() {
        let adapter = SftAdapter::standard(TaskKind::QuestionAnswering);
        let plain = mean_quality(Dataset::NaturalQuestions, |_| 0.0, 132);
        let tuned = mean_quality(Dataset::NaturalQuestions, |r| adapter.shift(r), 133);
        assert!(
            tuned > plain + 0.02,
            "in-domain SFT should help: {plain} vs {tuned}"
        );
    }

    #[test]
    fn sft_hurts_out_of_domain_table3() {
        let adapter = SftAdapter::standard(TaskKind::QuestionAnswering);
        let plain = mean_quality(Dataset::Alpaca, |_| 0.0, 134);
        let tuned = mean_quality(Dataset::Alpaca, |r| adapter.shift(r), 135);
        assert!(
            tuned < plain - 0.03,
            "OOD SFT should regress: {plain} vs {tuned}"
        );
    }

    #[test]
    fn shift_sign_depends_on_task() {
        let adapter = SftAdapter::standard(TaskKind::CodeGeneration);
        let mut code = WorkloadGenerator::new(Dataset::Nl2Bash, 136);
        let mut chat = WorkloadGenerator::new(Dataset::Alpaca, 136);
        let rc = code.generate_requests(1).pop().unwrap();
        let ra = chat.generate_requests(1).pop().unwrap();
        assert!(adapter.shift(&rc) > 0.0);
        assert!(adapter.shift(&ra) < 0.0);
    }
}
