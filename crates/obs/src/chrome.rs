//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Maps the merged event stream onto the trace-event model: one
//! *process* per component (pid 0 is the router tier, pid `p + 1` is
//! serving pool `p`), one *thread* per track inside it (router
//! replicas plus a gossip track; a pool scheduler track plus one track
//! per serving replica). Step iterations and request residencies become
//! `"X"` complete spans, preemptions/swaps/CoW/outages/gossip become
//! `"s"`-scoped `"i"` instants, and track names are declared with
//! `"M"` metadata events. All timestamps are the simulator's integer
//! microseconds, so the export is byte-deterministic by construction.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::ObsReport;
use crate::event::EventKind;
use crate::telemetry::f6;

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn meta(out: &mut Vec<String>, pid: u32, tid: u32, field: &str, name: &str) {
    out.push(format!(
        "{{\"name\":\"{field}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    ));
}

fn span(out: &mut Vec<String>, name: &str, pid: u32, tid: u32, ts: u64, dur: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"args\":{{{args}}}}}"
    ));
}

fn instant(out: &mut Vec<String>, name: &str, pid: u32, tid: u32, ts: u64, args: &str) {
    out.push(format!(
        "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"s\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"args\":{{{args}}}}}"
    ));
}

/// A request span currently open on some pool replica track.
struct OpenSpan {
    pid: u32,
    tid: u32,
    since_us: u64,
    decoding: bool,
}

impl OpenSpan {
    fn close(&self, out: &mut Vec<String>, at_us: u64, request: u64) {
        let name = if self.decoding { "decode" } else { "prefill" };
        span(
            out,
            name,
            self.pid,
            self.tid,
            self.since_us,
            at_us - self.since_us,
            &format!("\"request\":{request}"),
        );
    }
}

/// Serializes the report's event stream as Chrome trace-event JSON.
pub fn chrome_trace_json(report: &ObsReport) -> String {
    let mut out: Vec<String> = Vec::new();

    // Track declarations. pid 0: router tier.
    meta(&mut out, 0, 0, "process_name", "router");
    for r in 0..report.router_replicas {
        meta(&mut out, 0, r, "thread_name", &format!("replica {r}"));
    }
    meta(&mut out, 0, report.router_replicas, "thread_name", "gossip");
    // pid p + 1: serving pool p.
    for (p, pool) in report.pools.iter().enumerate() {
        let pid = p as u32 + 1;
        meta(
            &mut out,
            pid,
            0,
            "process_name",
            &format!("pool {p}: {}", pool.name),
        );
        meta(&mut out, pid, 0, "thread_name", "scheduler");
        for r in 0..pool.replicas {
            meta(&mut out, pid, r + 1, "thread_name", &format!("replica {r}"));
        }
    }

    let gossip_tid = report.router_replicas;
    let mut open: BTreeMap<u64, OpenSpan> = BTreeMap::new();
    // Requests past their first token: spans they reopen are decode,
    // not prefill, even across a swap-out/resume gap.
    let mut decoded: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    for ev in &report.events {
        let at_us = ev.at.as_micros();
        match ev.kind {
            EventKind::Arrival { replica } => {
                instant(
                    &mut out,
                    "arrival",
                    0,
                    replica,
                    at_us,
                    &format!("\"request\":{}", ev.request),
                );
            }
            EventKind::Stage0Hit { replica } => {
                instant(
                    &mut out,
                    "stage0_hit",
                    0,
                    replica,
                    at_us,
                    &format!("\"request\":{}", ev.request),
                );
            }
            EventKind::GossipRound {
                merges,
                staleness_s,
            } => {
                instant(
                    &mut out,
                    "gossip",
                    0,
                    gossip_tid,
                    at_us,
                    &format!("\"merges\":{merges},\"staleness_s\":{}", f6(staleness_s)),
                );
            }
            EventKind::PoolDown { pool } => {
                instant(&mut out, "pool_down", pool + 1, 0, at_us, "");
            }
            EventKind::PoolUp { pool } => {
                instant(&mut out, "pool_up", pool + 1, 0, at_us, "");
            }
            EventKind::StepEnd { started, batch } => {
                let ts = started.as_micros();
                span(
                    &mut out,
                    "step",
                    ev.lane,
                    0,
                    ts,
                    at_us - ts,
                    &format!("\"batch\":{batch}"),
                );
            }
            EventKind::SlotStart { replica } | EventKind::Resumed { replica } => {
                if let Some(s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                }
                open.insert(
                    ev.request,
                    OpenSpan {
                        pid: ev.lane,
                        tid: replica + 1,
                        since_us: at_us,
                        decoding: decoded.contains(&ev.request),
                    },
                );
            }
            EventKind::FirstToken => {
                if let Some(mut s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                    s.since_us = at_us;
                    s.decoding = true;
                    open.insert(ev.request, s);
                }
                decoded.insert(ev.request);
            }
            EventKind::QuantumPreempt => {
                if let Some(s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                    instant(
                        &mut out,
                        "preempt",
                        s.pid,
                        s.tid,
                        at_us,
                        &format!("\"request\":{}", ev.request),
                    );
                }
            }
            EventKind::PressureSwapOut { host_blocks } => {
                if let Some(s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                    instant(
                        &mut out,
                        "swap_out",
                        s.pid,
                        s.tid,
                        at_us,
                        &format!("\"request\":{},\"host_blocks\":{host_blocks}", ev.request),
                    );
                }
            }
            EventKind::CowDiverged { copied } => {
                if let Some(s) = open.get(&ev.request) {
                    instant(
                        &mut out,
                        "cow",
                        s.pid,
                        s.tid,
                        at_us,
                        &format!("\"request\":{},\"copied\":{copied}", ev.request),
                    );
                }
            }
            EventKind::FailoverFlush { .. } => {
                // Failover voids the sequence's progress; it restarts
                // from prefill when re-admitted.
                if let Some(s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                }
                decoded.remove(&ev.request);
            }
            EventKind::Finish { .. } => {
                if let Some(s) = open.remove(&ev.request) {
                    s.close(&mut out, at_us, ev.request);
                }
            }
            // Selection/queueing detail lives in the telemetry stream;
            // it has no track of its own on the timeline.
            EventKind::Stage1Probe { .. }
            | EventKind::Selected { .. }
            | EventKind::RouterDecision { .. }
            | EventKind::Enqueued { .. }
            | EventKind::RejectedByCap { .. }
            | EventKind::PrefillChunk { .. } => {}
        }
    }
    let mut json = String::from("{\"traceEvents\":[");
    json.push_str(&out.join(","));
    json.push_str("]}\n");
    json
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsEvent, PoolMeta};
    use ic_desim::SimTime;

    fn ev(us: u64, lane: u32, request: u64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(us),
            lane,
            request,
            kind,
        }
    }

    fn report(events: Vec<ObsEvent>) -> ObsReport {
        ObsReport {
            pools: vec![PoolMeta {
                name: "gemma-27b".into(),
                replicas: 2,
            }],
            router_replicas: 1,
            events,
            dropped: 0,
            samples: Vec::new(),
        }
    }

    #[test]
    fn emits_tracks_spans_and_instants() {
        let json = chrome_trace_json(&report(vec![
            ev(0, 0, 1, EventKind::Arrival { replica: 0 }),
            ev(10, 1, 1, EventKind::SlotStart { replica: 0 }),
            ev(40, 1, 1, EventKind::FirstToken),
            ev(60, 1, 1, EventKind::QuantumPreempt),
            ev(80, 1, 1, EventKind::SlotStart { replica: 1 }),
            ev(100, 1, 1, EventKind::Finish { preemptions: 1 }),
            ev(
                120,
                1,
                crate::NO_REQUEST,
                EventKind::StepEnd {
                    started: SimTime::from_micros(90),
                    batch: 3,
                },
            ),
        ]));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"pool 0: gemma-27b\""));
        assert!(json.contains(
            "{\"name\":\"prefill\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":10,\"dur\":30,\"args\":{\"request\":1}}"
        ));
        assert!(json.contains(
            "{\"name\":\"decode\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":40,\"dur\":20,\"args\":{\"request\":1}}"
        ));
        assert!(json.contains("\"name\":\"preempt\",\"ph\":\"i\""));
        // The re-admitted sequence continues decoding on the new replica.
        assert!(json.contains(
            "{\"name\":\"decode\",\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":80,\"dur\":20,\"args\":{\"request\":1}}"
        ));
        assert!(json.contains(
            "{\"name\":\"step\",\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":90,\"dur\":30,\"args\":{\"batch\":3}}"
        ));
        // Determinism: same input, same bytes.
        assert_eq!(
            json,
            chrome_trace_json(&report(vec![
                ev(0, 0, 1, EventKind::Arrival { replica: 0 }),
                ev(10, 1, 1, EventKind::SlotStart { replica: 0 }),
                ev(40, 1, 1, EventKind::FirstToken),
                ev(60, 1, 1, EventKind::QuantumPreempt),
                ev(80, 1, 1, EventKind::SlotStart { replica: 1 }),
                ev(100, 1, 1, EventKind::Finish { preemptions: 1 }),
                ev(
                    120,
                    1,
                    crate::NO_REQUEST,
                    EventKind::StepEnd {
                        started: SimTime::from_micros(90),
                        batch: 3,
                    },
                ),
            ]))
        );
    }

    #[test]
    fn escapes_pool_names() {
        let mut r = report(vec![]);
        r.pools[0].name = "we\"ird\\name".into();
        let json = chrome_trace_json(&r);
        assert!(json.contains("we\\\"ird\\\\name"));
    }
}
