//! Ring-buffered event recording lanes and the merging recorder.
//!
//! Each recording component owns one [`LaneBuf`] — the engine holds
//! lane 0 inside the [`Recorder`], and each serving pool is handed lane
//! `p + 1` so pool-internal events can be recorded under the pool's own
//! lock even when pools step on parallel worker threads. Because every
//! component records in non-decreasing simulation time, each lane is
//! time-sorted by construction, and the final merge only needs a stable
//! sort by `(time, lane)` to produce one deterministic global stream
//! regardless of thread interleaving.

use std::collections::VecDeque;

use ic_desim::SimTime;

use crate::event::{EventKind, ObsEvent};

/// One component's ring buffer of lifecycle events.
///
/// The buffer holds at most `cap` events; when full, the oldest event is
/// dropped and counted, so a long run degrades to a suffix trace rather
/// than unbounded memory. Capacity `0` keeps the lane as a pure counter.
#[derive(Debug)]
pub struct LaneBuf {
    lane: u32,
    cap: usize,
    events: VecDeque<ObsEvent>,
    dropped: u64,
}

impl LaneBuf {
    /// Creates a lane with identity `lane` holding at most `cap` events.
    pub fn new(lane: u32, cap: usize) -> Self {
        LaneBuf {
            lane,
            cap,
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// The lane identity events are stamped with.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Records one event. Callers must push in non-decreasing `at`
    /// order; the merge relies on each lane being time-sorted.
    pub fn push(&mut self, at: SimTime, request: u64, kind: EventKind) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ObsEvent {
            at,
            lane: self.lane,
            request,
            kind,
        });
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the lane holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring (or refused at capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Owns the engine lane and merges all lanes into one ordered stream.
#[derive(Debug)]
pub struct Recorder {
    engine: LaneBuf,
}

impl Recorder {
    /// Lane id the recorder's own (engine) events are stamped with.
    pub const ENGINE_LANE: u32 = 0;

    /// Creates a recorder whose engine lane holds at most `cap` events.
    pub fn new(cap: usize) -> Self {
        Recorder {
            engine: LaneBuf::new(Self::ENGINE_LANE, cap),
        }
    }

    /// Records one engine-lane event (arrival, selection, routing,
    /// failover, gossip, outage edges).
    pub fn record(&mut self, at: SimTime, request: u64, kind: EventKind) {
        self.engine.push(at, request, kind);
    }

    /// Consumes the recorder plus the pool lanes handed back by the
    /// serving tier, returning the globally ordered event stream and
    /// the total ring-drop count.
    ///
    /// The sort key is `(time, lane)` and the sort is stable, so events
    /// a single component recorded at the same instant keep their
    /// recording order — the order state transitions actually happened.
    pub fn finish(self, pool_lanes: Vec<LaneBuf>) -> (Vec<ObsEvent>, u64) {
        let mut dropped = self.engine.dropped;
        let mut events: Vec<ObsEvent> = self.engine.events.into_iter().collect();
        for lane in pool_lanes {
            dropped += lane.dropped;
            events.extend(lane.events);
        }
        events.sort_by_key(|e| (e.at, e.lane));
        (events, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn ring_evicts_oldest_and_counts() {
        let mut lane = LaneBuf::new(1, 2);
        lane.push(t(1), 7, EventKind::FirstToken);
        lane.push(t(2), 7, EventKind::QuantumPreempt);
        lane.push(t(3), 7, EventKind::Finish { preemptions: 1 });
        assert_eq!(lane.len(), 2);
        assert_eq!(lane.dropped(), 1);
        let (events, dropped) = Recorder::new(4).finish(vec![lane]);
        assert_eq!(dropped, 1);
        assert_eq!(events[0].at, t(2));
        assert_eq!(events[1].kind, EventKind::Finish { preemptions: 1 });
    }

    #[test]
    fn zero_capacity_lane_only_counts() {
        let mut lane = LaneBuf::new(3, 0);
        lane.push(t(1), 1, EventKind::FirstToken);
        assert!(lane.is_empty());
        assert_eq!(lane.dropped(), 1);
    }

    #[test]
    fn merge_orders_by_time_then_lane_stably() {
        let mut rec = Recorder::new(16);
        rec.record(t(5), 1, EventKind::Arrival { replica: 0 });
        rec.record(t(5), 1, EventKind::RouterDecision { pool: 0 });
        let mut pool = LaneBuf::new(1, 16);
        pool.push(t(5), 1, EventKind::SlotStart { replica: 0 });
        pool.push(t(9), 1, EventKind::FirstToken);
        let mut pool2 = LaneBuf::new(2, 16);
        pool2.push(t(5), 2, EventKind::SlotStart { replica: 1 });
        let (events, dropped) = rec.finish(vec![pool2, pool]);
        assert_eq!(dropped, 0);
        let key: Vec<(u64, u32)> = events.iter().map(|e| (e.at.as_micros(), e.lane)).collect();
        assert_eq!(key, vec![(5, 0), (5, 0), (5, 1), (5, 2), (9, 1)]);
        // Stable within (time, lane): arrival precedes the router decision.
        assert_eq!(events[0].kind, EventKind::Arrival { replica: 0 });
        assert_eq!(events[1].kind, EventKind::RouterDecision { pool: 0 });
    }
}
