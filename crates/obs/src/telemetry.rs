//! Time-series telemetry: periodic cluster snapshots and their
//! byte-deterministic JSONL serialization.
//!
//! The engine arms an `ic_desim::Periodic` sampler; every firing builds
//! one [`TelemetrySample`] from live pool and router state. Samples
//! serialize with a fixed key order and fixed-precision floats
//! (`{:.6}`), so two replays of the same seed produce byte-identical
//! JSONL artifacts.

use std::fmt::Write as _;

/// Formats a float with the repo-wide fixed artifact precision.
pub(crate) fn f6(x: f64) -> String {
    format!("{x:.6}")
}

/// Per-pool gauges captured at one sample instant.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolSample {
    /// Jobs waiting for first admission.
    pub queue: u32,
    /// Sequences occupying slots.
    pub active: u32,
    /// Sequences swapped out under memory pressure.
    pub swapped: u32,
    /// KV blocks allocated across the pool's replicas.
    pub kv_used_blocks: u64,
    /// Allocated fraction of the pool's KV budget (0 when unpaged).
    pub kv_occupancy: f64,
    /// Blocks currently mapped by more than one sequence.
    pub kv_shared_blocks: u32,
    /// Logical-to-physical dedup ratio so far.
    pub dedup_ratio: f64,
    /// Mean sequences per iteration since the run started.
    pub mean_step_batch: f64,
}

impl PoolSample {
    fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            concat!(
                "{{\"queue\":{},\"active\":{},\"swapped\":{},",
                "\"kv_used_blocks\":{},\"kv_occupancy\":{},\"kv_shared_blocks\":{},",
                "\"dedup_ratio\":{},\"mean_step_batch\":{}}}"
            ),
            self.queue,
            self.active,
            self.swapped,
            self.kv_used_blocks,
            f6(self.kv_occupancy),
            self.kv_shared_blocks,
            f6(self.dedup_ratio),
            f6(self.mean_step_batch),
        );
    }
}

/// One cluster-wide snapshot emitted by the periodic sampler.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySample {
    /// Sample instant, microseconds since simulation start.
    pub t_us: u64,
    /// Requests that have left the system (served or rejected).
    pub completed: u64,
    /// Offers dropped by pool queue caps (fresh arrivals).
    pub queue_rejects: u64,
    /// Failover retries dropped by pool queue caps.
    pub retry_rejects: u64,
    /// Jobs flushed and re-enqueued by pool failovers.
    pub failover_requeues: u64,
    /// Running e2e latency percentiles over completions so far (0 when
    /// none yet).
    pub p50_e2e_s: f64,
    /// See [`TelemetrySample::p50_e2e_s`].
    pub p99_e2e_s: f64,
    /// Running TTFT percentiles over completions so far.
    pub p50_ttft_s: f64,
    /// See [`TelemetrySample::p50_ttft_s`].
    pub p99_ttft_s: f64,
    /// Per-pool gauges, in routing order.
    pub pools: Vec<PoolSample>,
    /// Per-router-replica smoothed load estimates.
    pub load_estimates: Vec<f64>,
    /// Per-router-replica routing decisions so far.
    pub decisions: Vec<u64>,
    /// Gossip rounds completed so far.
    pub gossip_rounds: u64,
    /// Mean delta-batch staleness at merge so far, seconds.
    pub mean_staleness_s: f64,
}

impl TelemetrySample {
    /// Serializes the sample as one JSONL line (no trailing newline),
    /// with fixed key order and fixed-precision floats.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            concat!(
                "{{\"kind\":\"sample\",\"t_s\":{},\"completed\":{},",
                "\"queue_rejects\":{},\"retry_rejects\":{},\"failover_requeues\":{},",
                "\"p50_e2e_s\":{},\"p99_e2e_s\":{},\"p50_ttft_s\":{},\"p99_ttft_s\":{},",
                "\"pools\":["
            ),
            f6(self.t_us as f64 / 1e6),
            self.completed,
            self.queue_rejects,
            self.retry_rejects,
            self.failover_requeues,
            f6(self.p50_e2e_s),
            f6(self.p99_e2e_s),
            f6(self.p50_ttft_s),
            f6(self.p99_ttft_s),
        );
        for (i, p) in self.pools.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            p.write_json(&mut out);
        }
        out.push_str("],\"router\":{\"load_estimates\":[");
        for (i, l) in self.load_estimates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f6(*l));
        }
        out.push_str("],\"decisions\":[");
        for (i, d) in self.decisions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{d}");
        }
        let _ = write!(
            out,
            "],\"gossip_rounds\":{},\"mean_staleness_s\":{}}}}}",
            self.gossip_rounds,
            f6(self.mean_staleness_s),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetrySample {
        TelemetrySample {
            t_us: 60_000_000,
            completed: 42,
            queue_rejects: 1,
            retry_rejects: 0,
            failover_requeues: 3,
            p50_e2e_s: 1.25,
            p99_e2e_s: 4.5,
            p50_ttft_s: 0.25,
            p99_ttft_s: 0.75,
            pools: vec![PoolSample {
                queue: 2,
                active: 8,
                swapped: 1,
                kv_used_blocks: 120,
                kv_occupancy: 0.46875,
                kv_shared_blocks: 6,
                dedup_ratio: 0.125,
                mean_step_batch: 7.5,
            }],
            load_estimates: vec![0.5, 1.0],
            decisions: vec![20, 22],
            gossip_rounds: 12,
            mean_staleness_s: 2.5,
        }
    }

    #[test]
    fn json_is_stable_and_wellformed() {
        let line = sample().to_json();
        assert_eq!(line, sample().to_json());
        assert!(line.starts_with("{\"kind\":\"sample\",\"t_s\":60.000000,"));
        assert!(line.contains("\"pools\":[{\"queue\":2,\"active\":8,\"swapped\":1,"));
        assert!(line.contains("\"router\":{\"load_estimates\":[0.500000,1.000000],"));
        assert!(line.contains("\"decisions\":[20,22],\"gossip_rounds\":12,"));
        let opens = line.matches(['{', '[']).count();
        let closes = line.matches(['}', ']']).count();
        assert_eq!(opens, closes);
        assert!(!line.contains('\n'));
    }
}
