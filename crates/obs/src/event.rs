//! The request-lifecycle event taxonomy.
//!
//! Every observable state transition in the serving stack is one
//! [`ObsEvent`]: a simulation timestamp, the request it concerns (or
//! [`NO_REQUEST`] for cluster-level instants), and an [`EventKind`]
//! payload. Events are recorded into per-component lanes (see
//! [`crate::LaneBuf`]) and merged into one globally ordered stream at
//! the end of a run, so the taxonomy is designed to be reconstructable:
//! a request's filtered stream is a complete state machine from
//! `Arrival` to exactly one terminal event (`Finish` or
//! `RejectedByCap`), from which [`crate::critical_paths`] derives the
//! per-phase latency breakdown.

use ic_desim::SimTime;

/// Sentinel request id for events that concern the cluster rather than
/// one request (step spans, gossip rounds, outage edges).
pub const NO_REQUEST: u64 = u64::MAX;

/// What happened. Request-scoped kinds carry only the payload the lane
/// cannot supply: pool identity comes from the event's lane (engine
/// events that name a pool carry it explicitly, since the engine lane
/// serves every pool).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The request entered the system, owned by router replica
    /// `replica`.
    Arrival {
        /// Router replica the request hashes to.
        replica: u32,
    },
    /// The stage-0 response cache answered this request: a stored
    /// response within the similarity threshold was found, so selection,
    /// routing, and the pool path are skipped entirely. Non-terminal —
    /// the request still finishes (with `Finish`) after the fixed
    /// cache-serve latency.
    Stage0Hit {
        /// Router replica the request hashes to.
        replica: u32,
    },
    /// The stage-1 selector probe that served this request. `batch` is
    /// the number of arrivals the live probe covered (`0` when the
    /// request consumed a selection precomputed by the look-ahead
    /// window); `reused` marks window-precomputed state (a full
    /// selection hit or a stage-1 candidate reuse).
    Stage1Probe {
        /// Arrivals covered by the live multi-query probe.
        batch: u32,
        /// Served from window-precomputed selector state.
        reused: bool,
    },
    /// Example selection finished: the request was handed `examples`
    /// in-context examples and routed to `model` (`offloaded` when that
    /// is not the primary).
    Selected {
        /// Catalog id of the serving model.
        model: u32,
        /// In-context examples selected.
        examples: u32,
        /// Routed off the primary model.
        offloaded: bool,
    },
    /// The routing decision mapped the model onto serving pool `pool`.
    RouterDecision {
        /// Pool index in routing order.
        pool: u32,
    },
    /// The pool was busy: the request waits in `pool`'s admission
    /// queue.
    Enqueued {
        /// Pool index in routing order.
        pool: u32,
    },
    /// Terminal: the pool's queue cap dropped the request (`retry` when
    /// it was a failover retry rather than a fresh arrival).
    RejectedByCap {
        /// The dropped offer was a failover retry.
        retry: bool,
    },
    /// A pool failover flushed this request's in-flight state; the
    /// router tier re-enqueues it as a retry.
    FailoverFlush {
        /// Pool index that went down.
        pool: u32,
    },
    /// The request occupied a slot (first admission, or re-admission of
    /// a quantum-preempted sequence) on `replica` of the lane's pool.
    SlotStart {
        /// Serving replica within the pool.
        replica: u32,
    },
    /// One chunked-prefill iteration processed `tokens` prompt tokens.
    PrefillChunk {
        /// Prompt tokens in the chunk.
        tokens: u32,
    },
    /// End of the first decode iteration — the user-perceived first
    /// token (prefill end for zero-decode jobs).
    FirstToken,
    /// The sequence yielded its slot at a token boundary (decode
    /// quantum exhausted while jobs queued behind it) and re-queued.
    QuantumPreempt,
    /// Memory pressure swapped the sequence out; `host_blocks` of its
    /// KV state were parked on the host ledger (`0` = dropped, to be
    /// rebuilt by recompute).
    PressureSwapOut {
        /// Host blocks parked.
        host_blocks: u32,
    },
    /// A swapped-out sequence returned to a slot on `replica`.
    Resumed {
        /// Serving replica within the pool.
        replica: u32,
    },
    /// The sequence's first write past its shared prefix resolved a
    /// divergence (`copied` = copy-on-write; otherwise privatized in
    /// place).
    CowDiverged {
        /// A fresh block was copied (other readers kept the original).
        copied: bool,
    },
    /// Terminal: the sequence emitted its last token.
    Finish {
        /// Times the sequence was preempted over its lifetime.
        preemptions: u32,
    },
    /// One pool iteration (token step) ran from `started` to the
    /// event's timestamp with `batch` sequences in lockstep. Cluster
    /// scoped ([`NO_REQUEST`]).
    StepEnd {
        /// When the iteration started.
        started: SimTime,
        /// Sequences in the batch.
        batch: u32,
    },
    /// One gossip round of the router tier: `merges` delta batches
    /// delivered, `staleness_s` their summed age. Cluster scoped.
    GossipRound {
        /// Delta batches applied this round.
        merges: u64,
        /// Summed batch age at delivery, seconds.
        staleness_s: f64,
    },
    /// Fault injection: the pool went down. Cluster scoped.
    PoolDown {
        /// Pool index in routing order.
        pool: u32,
    },
    /// Fault injection: the pool recovered. Cluster scoped.
    PoolUp {
        /// Pool index in routing order.
        pool: u32,
    },
}

impl EventKind {
    /// Whether this kind ends a request's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            EventKind::Finish { .. } | EventKind::RejectedByCap { .. }
        )
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsEvent {
    /// Simulation time the transition happened.
    pub at: SimTime,
    /// Recording lane: `0` is the engine (arrivals, selection, routing,
    /// failover); lane `p + 1` is serving pool `p`.
    pub lane: u32,
    /// Request the event concerns, or [`NO_REQUEST`].
    pub request: u64,
    /// The transition.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_kinds() {
        assert!(EventKind::Finish { preemptions: 0 }.is_terminal());
        assert!(EventKind::RejectedByCap { retry: true }.is_terminal());
        assert!(!EventKind::Arrival { replica: 0 }.is_terminal());
        assert!(!EventKind::Stage0Hit { replica: 0 }.is_terminal());
        assert!(!EventKind::FirstToken.is_terminal());
    }
}
