//! Per-request critical-path reconstruction.
//!
//! Folds the merged event stream into one [`CriticalPath`] per request:
//! an exact integer-microsecond decomposition of the request's
//! end-to-end latency into queue wait, prefill, decode, swap penalty,
//! and retry overhead. Because every bucket is accrued in whole
//! microseconds between consecutive lifecycle transitions, the buckets
//! sum *exactly* to `terminal - arrival` for any well-formed stream —
//! no float tolerance is involved until the caller compares against the
//! seconds-valued latencies in `EngineReport`.

use std::collections::BTreeMap;

use ic_desim::SimTime;

use crate::event::{EventKind, ObsEvent};

/// Exact latency decomposition of one request, in integer microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPath {
    /// When the request entered the system.
    pub arrival: SimTime,
    /// When the terminal event (finish or reject) fired, if one did.
    pub terminal: Option<SimTime>,
    /// The terminal event was a queue-cap rejection.
    pub rejected: bool,
    /// Terminal events observed (a well-formed stream has exactly one).
    pub terminals: u32,
    /// Time spent waiting for first admission or re-admission after a
    /// quantum preemption or failover.
    pub queue_us: u64,
    /// Time spent in chunked prefill iterations.
    pub prefill_us: u64,
    /// Time spent in decode iterations.
    pub decode_us: u64,
    /// Time spent swapped out under memory pressure.
    pub swap_us: u64,
    /// Progress discarded by failover: everything accrued before a
    /// `FailoverFlush` is moved here and the phases restart.
    pub retry_us: u64,
    /// Event timestamps never decreased while folding this request.
    pub monotone: bool,
}

impl CriticalPath {
    /// Sum of all phase buckets.
    pub fn total_us(&self) -> u64 {
        self.queue_us + self.prefill_us + self.decode_us + self.swap_us + self.retry_us
    }

    /// `terminal - arrival`, or 0 while the request is still in flight.
    pub fn span_us(&self) -> u64 {
        self.terminal
            .map(|t| (t - self.arrival).as_micros())
            .unwrap_or(0)
    }

    /// A stream is well-formed when it closed with exactly one terminal
    /// event, timestamps never went backwards, and the phase buckets
    /// account for every microsecond between arrival and terminal.
    pub fn well_formed(&self) -> bool {
        self.terminals == 1 && self.monotone && self.span_us() == self.total_us()
    }
}

/// Where un-accrued time since `mark` will be charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting to be admitted for the first time (or after a failover
    /// reset / quantum preemption): charges `queue_us`.
    WaitFresh,
    /// Swapped out under pressure: charges `swap_us`.
    WaitSwapped,
    /// Occupying a slot: charges `prefill_us` until the first token,
    /// `decode_us` after.
    Running,
    /// Terminal event seen; nothing accrues.
    Done,
}

#[derive(Debug)]
struct Builder {
    path: CriticalPath,
    mark: SimTime,
    phase: Phase,
    decoding: bool,
}

impl Builder {
    fn new(arrival: SimTime) -> Self {
        Builder {
            path: CriticalPath {
                arrival,
                terminal: None,
                rejected: false,
                terminals: 0,
                queue_us: 0,
                prefill_us: 0,
                decode_us: 0,
                swap_us: 0,
                retry_us: 0,
                monotone: true,
            },
            mark: arrival,
            phase: Phase::WaitFresh,
            decoding: false,
        }
    }

    /// Charges `mark..at` to the active phase's bucket and advances the
    /// mark.
    fn accrue(&mut self, at: SimTime) {
        if at < self.mark {
            self.path.monotone = false;
        }
        let us = (at - self.mark).as_micros();
        match self.phase {
            Phase::WaitFresh => self.path.queue_us += us,
            Phase::WaitSwapped => self.path.swap_us += us,
            Phase::Running => {
                if self.decoding {
                    self.path.decode_us += us;
                } else {
                    self.path.prefill_us += us;
                }
            }
            Phase::Done => {}
        }
        self.mark = at;
    }

    fn fold(&mut self, at: SimTime, kind: &EventKind) {
        match kind {
            // Selection and routing happen while the request waits; the
            // time stays in the queue bucket. A stage-0 cache hit never
            // occupies a slot, so its whole (fixed) serve latency is
            // queue-phase time too.
            EventKind::Arrival { .. }
            | EventKind::Stage0Hit { .. }
            | EventKind::Stage1Probe { .. }
            | EventKind::Selected { .. }
            | EventKind::RouterDecision { .. }
            | EventKind::Enqueued { .. }
            | EventKind::PrefillChunk { .. }
            | EventKind::CowDiverged { .. } => {
                if at < self.mark {
                    self.path.monotone = false;
                }
            }
            EventKind::SlotStart { .. } | EventKind::Resumed { .. } => {
                self.accrue(at);
                self.phase = Phase::Running;
            }
            EventKind::FirstToken => {
                self.accrue(at);
                self.decoding = true;
            }
            EventKind::QuantumPreempt => {
                self.accrue(at);
                self.phase = Phase::WaitFresh;
            }
            EventKind::PressureSwapOut { .. } => {
                self.accrue(at);
                self.phase = Phase::WaitSwapped;
            }
            EventKind::FailoverFlush { .. } => {
                // All progress so far is lost; charge it to retry
                // overhead and restart the lifecycle from the flush.
                self.accrue(at);
                let p = &mut self.path;
                p.retry_us += p.queue_us + p.prefill_us + p.decode_us + p.swap_us;
                p.queue_us = 0;
                p.prefill_us = 0;
                p.decode_us = 0;
                p.swap_us = 0;
                self.decoding = false;
                self.phase = Phase::WaitFresh;
            }
            EventKind::RejectedByCap { .. } => {
                self.accrue(at);
                self.path.terminal = Some(at);
                self.path.rejected = true;
                self.path.terminals += 1;
                self.phase = Phase::Done;
            }
            EventKind::Finish { .. } => {
                self.accrue(at);
                self.path.terminal = Some(at);
                self.path.terminals += 1;
                self.phase = Phase::Done;
            }
            // Cluster-scoped kinds never reach a request builder.
            EventKind::StepEnd { .. }
            | EventKind::GossipRound { .. }
            | EventKind::PoolDown { .. }
            | EventKind::PoolUp { .. } => {}
        }
    }
}

/// Folds a merged event stream into one [`CriticalPath`] per request.
///
/// Requests whose `Arrival` fell out of the ring (or cluster-scoped
/// events) are skipped — a critical path without its arrival anchor
/// would be meaningless.
pub fn critical_paths(events: &[ObsEvent]) -> BTreeMap<u64, CriticalPath> {
    let mut builders: BTreeMap<u64, Builder> = BTreeMap::new();
    for ev in events {
        if ev.request == crate::event::NO_REQUEST {
            continue;
        }
        if let EventKind::Arrival { .. } = ev.kind {
            builders.insert(ev.request, Builder::new(ev.at));
            continue;
        }
        if let Some(b) = builders.get_mut(&ev.request) {
            b.fold(ev.at, &ev.kind);
        }
    }
    builders.into_iter().map(|(id, b)| (id, b.path)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_REQUEST;

    fn ev(us: u64, lane: u32, request: u64, kind: EventKind) -> ObsEvent {
        ObsEvent {
            at: SimTime::from_micros(us),
            lane,
            request,
            kind,
        }
    }

    #[test]
    fn simple_lifecycle_sums_exactly() {
        let events = vec![
            ev(100, 0, 1, EventKind::Arrival { replica: 0 }),
            ev(
                100,
                0,
                1,
                EventKind::Selected {
                    model: 0,
                    examples: 4,
                    offloaded: false,
                },
            ),
            ev(100, 0, 1, EventKind::RouterDecision { pool: 0 }),
            ev(150, 1, 1, EventKind::SlotStart { replica: 0 }),
            ev(150, 1, 1, EventKind::PrefillChunk { tokens: 256 }),
            ev(400, 1, 1, EventKind::FirstToken),
            ev(900, 1, 1, EventKind::Finish { preemptions: 0 }),
        ];
        let paths = critical_paths(&events);
        let p = &paths[&1];
        assert!(p.well_formed());
        assert_eq!(p.queue_us, 50);
        assert_eq!(p.prefill_us, 250);
        assert_eq!(p.decode_us, 500);
        assert_eq!(p.swap_us, 0);
        assert_eq!(p.retry_us, 0);
        assert_eq!(p.span_us(), 800);
        assert!(!p.rejected);
    }

    #[test]
    fn preempt_swap_and_failover_partition_the_span() {
        let events = vec![
            ev(0, 0, 2, EventKind::Arrival { replica: 1 }),
            ev(10, 1, 2, EventKind::SlotStart { replica: 0 }),
            ev(30, 1, 2, EventKind::FirstToken),
            // Quantum preemption: 30..50 decoded, 50..60 queued again.
            ev(50, 1, 2, EventKind::QuantumPreempt),
            ev(60, 1, 2, EventKind::SlotStart { replica: 1 }),
            // Pressure swap: 60..70 decoded, 70..90 swapped out.
            ev(70, 1, 2, EventKind::PressureSwapOut { host_blocks: 3 }),
            ev(90, 1, 2, EventKind::Resumed { replica: 0 }),
            // Failover at 100 voids everything accrued so far.
            ev(100, 0, 2, EventKind::FailoverFlush { pool: 0 }),
            ev(120, 2, 2, EventKind::SlotStart { replica: 0 }),
            ev(140, 2, 2, EventKind::FirstToken),
            ev(160, 2, 2, EventKind::Finish { preemptions: 2 }),
        ];
        let paths = critical_paths(&events);
        let p = &paths[&2];
        assert!(p.well_formed());
        assert_eq!(p.retry_us, 100);
        assert_eq!(p.queue_us, 20);
        assert_eq!(p.prefill_us, 20);
        assert_eq!(p.decode_us, 20);
        assert_eq!(p.swap_us, 0);
        assert_eq!(p.span_us(), 160);
    }

    #[test]
    fn stage0_hit_charges_queue_only() {
        let events = vec![
            ev(100, 0, 7, EventKind::Arrival { replica: 0 }),
            ev(100, 0, 7, EventKind::Stage0Hit { replica: 0 }),
            ev(2100, 0, 7, EventKind::Finish { preemptions: 0 }),
        ];
        let paths = critical_paths(&events);
        let p = &paths[&7];
        assert!(p.well_formed());
        assert_eq!(p.queue_us, 2000);
        assert_eq!(p.prefill_us + p.decode_us + p.swap_us + p.retry_us, 0);
        assert_eq!(p.span_us(), 2000);
    }

    #[test]
    fn rejection_is_terminal_and_charges_queue() {
        let events = vec![
            ev(0, 0, 3, EventKind::Arrival { replica: 0 }),
            ev(0, 0, 3, EventKind::RouterDecision { pool: 1 }),
            ev(0, 0, 3, EventKind::RejectedByCap { retry: false }),
        ];
        let paths = critical_paths(&events);
        let p = &paths[&3];
        assert!(p.well_formed());
        assert!(p.rejected);
        assert_eq!(p.total_us(), 0);
    }

    #[test]
    fn double_terminal_and_regressions_flagged() {
        let events = vec![
            ev(10, 0, 4, EventKind::Arrival { replica: 0 }),
            ev(20, 1, 4, EventKind::Finish { preemptions: 0 }),
            ev(15, 1, 4, EventKind::Finish { preemptions: 0 }),
        ];
        let paths = critical_paths(&events);
        let p = &paths[&4];
        assert_eq!(p.terminals, 2);
        assert!(!p.monotone);
        assert!(!p.well_formed());
    }

    #[test]
    fn cluster_events_and_orphans_skipped() {
        let events = vec![
            ev(
                0,
                1,
                NO_REQUEST,
                EventKind::StepEnd {
                    started: SimTime::ZERO,
                    batch: 4,
                },
            ),
            // Finish with no arrival anchor (evicted from the ring).
            ev(5, 1, 9, EventKind::Finish { preemptions: 0 }),
        ];
        assert!(critical_paths(&events).is_empty());
    }
}
