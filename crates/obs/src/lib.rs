//! `ic-obs`: deterministic observability for the IC-Cache replay.
//!
//! Three coupled facilities, all zero-cost when disabled and
//! byte-deterministic when enabled:
//!
//! 1. **Request-lifecycle tracing** — components record [`ObsEvent`]s
//!    into per-lane ring buffers ([`LaneBuf`]); the engine's
//!    [`Recorder`] merges them into one `(time, lane)`-ordered stream.
//!    [`critical_paths`] folds that stream into an exact
//!    integer-microsecond latency decomposition per request
//!    ([`CriticalPath`]): queue wait, prefill, decode, swap penalty,
//!    retry overhead.
//! 2. **Timeline export** — [`ObsReport::chrome_trace_json`] serializes
//!    the stream as Chrome trace-event JSON, loadable in Perfetto with
//!    one track per pool replica and router replica.
//! 3. **Time-series telemetry** — an `ic_desim::Periodic`-driven
//!    sampler snapshots queue depth, KV occupancy and dedup, batch
//!    size, and router load/staleness into [`TelemetrySample`]s;
//!    [`ObsReport::telemetry_jsonl`] renders them as JSONL.
//!
//! Everything downstream of recording is a pure function of the event
//! stream, so two replays of the same seed yield byte-identical
//! artifacts. The crate depends only on `ic-desim` (for [`SimTime`]
//! stamps), which lets every layer of the stack — serving pools
//! included — record without dependency cycles.
//!
//! [`SimTime`]: ic_desim::SimTime

mod chrome;
mod critical;
mod event;
mod recorder;
mod telemetry;

pub use critical::{CriticalPath, critical_paths};
pub use event::{EventKind, NO_REQUEST, ObsEvent};
pub use recorder::{LaneBuf, Recorder};
pub use telemetry::{PoolSample, TelemetrySample};

use std::collections::BTreeMap;

/// Identity of one serving pool, for timeline track naming.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolMeta {
    /// Pool (model) name, e.g. `gemma-27b`.
    pub name: String,
    /// Serving replicas in the pool.
    pub replicas: u32,
}

/// Everything the observability layer captured in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsReport {
    /// Serving pools, in routing order (lane `p + 1` is `pools[p]`).
    pub pools: Vec<PoolMeta>,
    /// Router tier replicas.
    pub router_replicas: u32,
    /// The merged, `(time, lane)`-ordered event stream (empty when only
    /// the sampler ran).
    pub events: Vec<ObsEvent>,
    /// Events evicted from ring buffers before the merge.
    pub dropped: u64,
    /// Periodic telemetry snapshots, in time order.
    pub samples: Vec<TelemetrySample>,
}

impl ObsReport {
    /// Serializes the event stream as Chrome trace-event JSON
    /// (Perfetto-loadable). See `docs/observability.md` for the track
    /// layout.
    pub fn chrome_trace_json(&self) -> String {
        chrome::chrome_trace_json(self)
    }

    /// Renders the telemetry snapshots as JSONL: one line per sample
    /// plus a trailing summary line. `footer_extra` is spliced into the
    /// summary object verbatim (callers pass pre-serialized fragments
    /// such as replay counters).
    pub fn telemetry_jsonl(&self, footer_extra: Option<&str>) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        out.push_str(&format!(
            "{{\"kind\":\"summary\",\"events_recorded\":{},\"events_dropped\":{},\"samples\":{}",
            self.events.len(),
            self.dropped,
            self.samples.len(),
        ));
        if let Some(extra) = footer_extra {
            out.push(',');
            out.push_str(extra);
        }
        out.push_str("}\n");
        out
    }

    /// Folds the event stream into per-request critical paths.
    pub fn critical_paths(&self) -> BTreeMap<u64, CriticalPath> {
        critical_paths(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_jsonl_has_summary_footer() {
        let report = ObsReport {
            pools: Vec::new(),
            router_replicas: 1,
            events: Vec::new(),
            dropped: 2,
            samples: Vec::new(),
        };
        assert_eq!(
            report.telemetry_jsonl(None),
            "{\"kind\":\"summary\",\"events_recorded\":0,\"events_dropped\":2,\"samples\":0}\n"
        );
        assert_eq!(
            report.telemetry_jsonl(Some("\"replay\":{\"threads\":4}")),
            "{\"kind\":\"summary\",\"events_recorded\":0,\"events_dropped\":2,\"samples\":0,\"replay\":{\"threads\":4}}\n"
        );
    }
}
