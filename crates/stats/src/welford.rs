//! Online mean/variance via Welford's algorithm.

/// Numerically-stable running mean, variance, min and max.
///
/// # Examples
///
/// ```
/// use ic_stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0.0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = RunningStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a.mean(), before.mean());
        assert_eq!(a.count(), before.count());

        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), before.mean());
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn sum_is_consistent() {
        let mut s = RunningStats::new();
        for x in [1.5, 2.5, 6.0] {
            s.push(x);
        }
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }
}
