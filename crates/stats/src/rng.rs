//! Deterministic seed derivation and RNG construction.
//!
//! Every stochastic component in the workspace takes an explicit seed so
//! that any experiment can be regenerated in isolation (DESIGN.md §7).
//! Sub-seeds are derived with SplitMix64, which has good avalanche behaviour
//! and is the standard way to expand a single user-provided seed into many
//! independent generator seeds.

use rand::SeedableRng;
use rand::rngs::StdRng;

/// One step of the SplitMix64 sequence, returning the mixed output.
///
/// This is Sebastiano Vigna's finalizer; each distinct input maps to a
/// well-scrambled 64-bit output, so consecutive seeds produce unrelated
/// generator states.
#[inline]
pub fn split_mix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds a deterministic [`StdRng`] from a 64-bit seed.
///
/// The seed is first diffused through [`split_mix64`] so that seeds `0`,
/// `1`, `2`, ... yield unrelated streams.
pub fn rng_from_seed(seed: u64) -> StdRng {
    let mut key = [0u8; 32];
    let mut s = seed;
    for chunk in key.chunks_exact_mut(8) {
        s = split_mix64(s);
        chunk.copy_from_slice(&s.to_le_bytes());
    }
    StdRng::from_seed(key)
}

/// A stream of independent sub-seeds derived from one root seed.
///
/// Components that own several stochastic processes (e.g. the workload
/// generator: topics, difficulties, arrivals) pull one sub-seed per process
/// so that changing the number of draws in one process does not perturb the
/// others.
///
/// # Examples
///
/// ```
/// use ic_stats::rng::SeedStream;
///
/// let mut s = SeedStream::new(42);
/// let a = s.next_seed();
/// let b = s.next_seed();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct SeedStream {
    state: u64,
}

impl SeedStream {
    /// Creates a stream rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next derived sub-seed.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        split_mix64(self.state)
    }

    /// Returns a ready-to-use RNG seeded with the next sub-seed.
    pub fn next_rng(&mut self) -> StdRng {
        rng_from_seed(self.next_seed())
    }

    /// Derives a named sub-stream, e.g. one per dataset.
    ///
    /// The label is hashed (FNV-1a) into the derivation so that adding new
    /// labels does not shift existing streams.
    pub fn fork(&self, label: &str) -> SeedStream {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        SeedStream::new(split_mix64(self.state ^ h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn split_mix_is_deterministic() {
        assert_eq!(split_mix64(1), split_mix64(1));
        assert_ne!(split_mix64(1), split_mix64(2));
    }

    #[test]
    fn rng_from_seed_is_reproducible() {
        let mut a = rng_from_seed(99);
        let mut b = rng_from_seed(99);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = rng_from_seed(0);
        let mut b = rng_from_seed(1);
        let xa: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(xa, xb);
    }

    #[test]
    fn seed_stream_produces_distinct_seeds() {
        let mut s = SeedStream::new(7);
        let seeds: Vec<u64> = (0..64).map(|_| s.next_seed()).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len());
    }

    #[test]
    fn forks_are_label_dependent_and_stable() {
        let s = SeedStream::new(7);
        let mut a1 = s.fork("alpha");
        let mut a2 = s.fork("alpha");
        let mut b = s.fork("beta");
        let sa1 = a1.next_seed();
        let sa2 = a2.next_seed();
        let sb = b.next_seed();
        assert_eq!(sa1, sa2);
        assert_ne!(sa1, sb);
    }

    #[test]
    fn fork_does_not_advance_parent() {
        let mut s = SeedStream::new(7);
        let _ = s.fork("x");
        let first = s.next_seed();
        let mut t = SeedStream::new(7);
        assert_eq!(first, t.next_seed());
    }
}
