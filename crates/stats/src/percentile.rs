//! Exact percentile computation over recorded samples.
//!
//! The evaluation reports P50/P99 request completion times (§6.4, Fig. 20)
//! and median/max/min request rates (Fig. 2b). Sample counts in this
//! reproduction are modest (at most a few million), so an exact
//! sort-on-query recorder is both simpler and more trustworthy than a
//! sketch. Queries cache the sorted order and invalidate on insert.

/// Records `f64` samples and answers exact percentile queries.
///
/// # Examples
///
/// ```
/// use ic_stats::Percentiles;
///
/// let mut p = Percentiles::new();
/// for i in 1..=100 {
///     p.record(i as f64);
/// }
/// assert_eq!(p.quantile(0.5), Some(50.5));
/// assert_eq!(p.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Percentiles {
    samples: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty recorder with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples: Vec::with_capacity(n),
            sorted: true,
        }
    }

    /// Records one sample. Non-finite values are rejected (and counted as a
    /// programming error in debug builds) because a single NaN would poison
    /// every downstream percentile.
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        if x.is_finite() {
            self.samples.push(x);
            self.sorted = false;
        }
    }

    /// Bulk-records samples.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, xs: I) {
        for x in xs {
            self.record(x);
        }
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Exact quantile with linear interpolation between order statistics
    /// (the "R-7" rule used by numpy). `q` is clamped to `[0, 1]`.
    /// Returns `None` when empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.samples.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac)
    }

    /// Median (P50).
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// P90.
    pub fn p90(&mut self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// P99.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Smallest sample.
    pub fn min(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.first().copied()
    }

    /// Largest sample.
    pub fn max(&mut self) -> Option<f64> {
        self.ensure_sorted();
        self.samples.last().copied()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Drops all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sorted = true;
    }

    /// Read-only view of the raw samples (unsorted order not guaranteed).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Freezes the current samples into a read-only [`PercentileSnapshot`]
    /// answering any number of quantile queries without `&mut self` —
    /// the repeated-query path for periodic samplers, which would
    /// otherwise pay `ensure_sorted`'s borrow (and, interleaved with
    /// recording, a re-sort) on every probe.
    pub fn snapshot(&self) -> PercentileSnapshot {
        let mut sorted = self.samples.clone();
        if !self.sorted {
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
        }
        PercentileSnapshot { sorted }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("finite by construction"));
            self.sorted = true;
        }
    }
}

/// An immutable sorted copy of a [`Percentiles`] recorder's samples at
/// one instant: the memoized read-only query path.
///
/// # Examples
///
/// ```
/// use ic_stats::Percentiles;
///
/// let mut p = Percentiles::new();
/// p.record_all([3.0, 1.0, 2.0]);
/// let snap = p.snapshot();
/// assert_eq!(snap.quantile(0.5), Some(2.0));
/// p.record(100.0); // does not disturb the snapshot
/// assert_eq!(snap.max(), Some(3.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct PercentileSnapshot {
    sorted: Vec<f64>,
}

impl PercentileSnapshot {
    /// Samples frozen in the snapshot.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the snapshot froze an empty recorder.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Exact quantile with the same R-7 interpolation as
    /// [`Percentiles::quantile`]; `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (P50).
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// P90.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.90)
    }

    /// P99.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        let mut p = Percentiles::new();
        assert_eq!(p.quantile(0.5), None);
        assert_eq!(p.mean(), None);
        assert!(p.is_empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut p = Percentiles::new();
        p.record(7.0);
        assert_eq!(p.quantile(0.0), Some(7.0));
        assert_eq!(p.quantile(0.5), Some(7.0));
        assert_eq!(p.quantile(1.0), Some(7.0));
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let mut p = Percentiles::new();
        p.record_all([10.0, 20.0]);
        assert_eq!(p.quantile(0.5), Some(15.0));
        assert_eq!(p.quantile(0.25), Some(12.5));
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = Percentiles::new();
        let mut b = Percentiles::new();
        a.record_all([3.0, 1.0, 2.0, 5.0, 4.0]);
        b.record_all([1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(a.p50(), b.p50());
        assert_eq!(a.p99(), b.p99());
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut p = Percentiles::new();
        for i in 0..1000 {
            p.record((i as f64 * 17.0) % 251.0);
        }
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let v = p.quantile(q).unwrap();
            assert!(v >= prev, "quantile not monotone at q={q}");
            prev = v;
        }
    }

    #[test]
    fn rejects_non_finite_in_release_semantics() {
        let mut p = Percentiles::new();
        // In release builds the debug_assert is skipped and the sample is
        // silently dropped; verify the recorder stays clean either way.
        if !cfg!(debug_assertions) {
            p.record(f64::NAN);
            assert!(p.is_empty());
        }
        p.record(1.0);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn snapshot_matches_live_queries_and_stays_frozen() {
        let mut p = Percentiles::new();
        for i in 0..1000 {
            p.record((i as f64 * 17.0) % 251.0);
        }
        let snap = p.snapshot();
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(snap.quantile(q), p.quantile(q));
        }
        assert_eq!(snap.min(), p.min());
        assert_eq!(snap.max(), p.max());
        assert_eq!(snap.len(), p.len());
        p.record(1e9);
        assert_ne!(snap.max(), p.max());
        assert!(PercentileSnapshot::default().p99().is_none());
    }

    #[test]
    fn interleaved_record_and_query() {
        let mut p = Percentiles::new();
        p.record(1.0);
        assert_eq!(p.p50(), Some(1.0));
        p.record(3.0);
        assert_eq!(p.p50(), Some(2.0));
        p.record(2.0);
        assert_eq!(p.p50(), Some(2.0));
        assert_eq!(p.min(), Some(1.0));
        assert_eq!(p.max(), Some(3.0));
    }
}
