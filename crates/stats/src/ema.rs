//! Exponential moving averages and decaying counters.
//!
//! The Request Router tracks an EMA of the serving load (§4.2), the Example
//! Manager tracks an EMA of each example's potential replay gain `G(e)`
//! (§4.3), and the eviction policy keeps a moving average of offload gains
//! with a 0.9/hour decay (§4.3). Both primitives live here.

/// Classic exponential moving average with smoothing factor `alpha`.
///
/// `alpha` close to 1 tracks the most recent observation; close to 0 it
/// averages over a long horizon. Before the first observation the EMA
/// reports the configured initial value.
///
/// # Examples
///
/// ```
/// use ic_stats::Ema;
///
/// let mut load = Ema::new(0.2);
/// load.observe(10.0);
/// load.observe(20.0);
/// assert!(load.value() > 10.0 && load.value() < 20.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ema {
    alpha: f64,
    value: f64,
    initialized: bool,
}

impl Ema {
    /// Creates an EMA with smoothing factor `alpha in (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`; this is a programming error,
    /// not a data error.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EMA alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            value: 0.0,
            initialized: false,
        }
    }

    /// Creates an EMA that starts from a prior value instead of the first
    /// observation (useful when a sensible operating point is known).
    pub fn with_initial(alpha: f64, initial: f64) -> Self {
        let mut e = Self::new(alpha);
        e.value = initial;
        e.initialized = true;
        e
    }

    /// Feeds one observation.
    pub fn observe(&mut self, x: f64) {
        if self.initialized {
            self.value = self.alpha * x + (1.0 - self.alpha) * self.value;
        } else {
            self.value = x;
            self.initialized = true;
        }
    }

    /// Current smoothed value (0.0 before any observation unless a prior
    /// was supplied).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Blends a peer estimate into this EMA:
    /// `value = (1 - weight) * value + weight * peer`. This is the gossip
    /// merge used by replicated load trackers — unlike [`Ema::observe`]
    /// it ignores `alpha` (the blend weight is the consensus step size,
    /// not the smoothing factor) and it adopts the peer value outright
    /// when this EMA has seen nothing yet.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is outside `[0, 1]` (programming error).
    pub fn merge(&mut self, peer: f64, weight: f64) {
        assert!(
            (0.0..=1.0).contains(&weight),
            "merge weight must be in [0, 1], got {weight}"
        );
        if self.initialized {
            self.value = (1.0 - weight) * self.value + weight * peer;
        } else {
            self.value = peer;
            self.initialized = true;
        }
    }

    /// Whether at least one observation (or a prior) has been absorbed.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

/// A counter whose accumulated value decays by a fixed factor per period.
///
/// This is the paper's eviction-gain tracker: "we maintain a moving average
/// of this gain, applying a decay factor of 0.9 every hour to emphasize
/// recent usage" (§4.3). Decay is applied lazily on access, so the counter
/// is cheap even with millions of instances.
#[derive(Debug, Clone)]
pub struct DecayingCounter {
    /// Decay multiplier applied once per period.
    decay: f64,
    /// Period length in the caller's time unit (the manager uses seconds).
    period: f64,
    /// Accumulated value as of `last_update`.
    value: f64,
    /// Timestamp of the last add/decay application.
    last_update: f64,
}

impl DecayingCounter {
    /// Creates a counter decaying by `decay in (0, 1]` every `period > 0`
    /// time units.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters (programming error).
    pub fn new(decay: f64, period: f64) -> Self {
        assert!(
            decay > 0.0 && decay <= 1.0,
            "decay must be in (0, 1], got {decay}"
        );
        assert!(period > 0.0, "period must be positive, got {period}");
        Self {
            decay,
            period,
            value: 0.0,
            last_update: 0.0,
        }
    }

    /// Adds `amount` at time `now`, applying any pending decay first.
    pub fn add(&mut self, now: f64, amount: f64) {
        self.apply_decay(now);
        self.value += amount;
    }

    /// Returns the decayed value as of time `now`.
    pub fn value_at(&self, now: f64) -> f64 {
        let elapsed = (now - self.last_update).max(0.0);
        self.value * self.decay.powf(elapsed / self.period)
    }

    /// Folds pending decay into the stored value.
    fn apply_decay(&mut self, now: f64) {
        if now > self.last_update {
            self.value = self.value_at(now);
            self.last_update = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_first_observation_snaps() {
        let mut e = Ema::new(0.1);
        assert!(!e.is_initialized());
        e.observe(5.0);
        assert_eq!(e.value(), 5.0);
    }

    #[test]
    fn ema_tracks_with_alpha() {
        let mut e = Ema::new(0.5);
        e.observe(0.0);
        e.observe(10.0);
        assert!((e.value() - 5.0).abs() < 1e-12);
        e.observe(10.0);
        assert!((e.value() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn ema_with_initial_uses_prior() {
        let mut e = Ema::with_initial(0.5, 4.0);
        assert_eq!(e.value(), 4.0);
        e.observe(8.0);
        assert!((e.value() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn ema_converges_to_constant_input() {
        let mut e = Ema::new(0.2);
        for _ in 0..200 {
            e.observe(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "EMA alpha")]
    fn ema_rejects_zero_alpha() {
        let _ = Ema::new(0.0);
    }

    #[test]
    fn merge_blends_toward_peer() {
        let mut e = Ema::new(0.2);
        e.observe(10.0);
        e.merge(20.0, 0.5);
        assert!((e.value() - 15.0).abs() < 1e-12);
        e.merge(15.0, 0.0);
        assert!((e.value() - 15.0).abs() < 1e-12, "zero weight is a no-op");
        e.merge(3.0, 1.0);
        assert!((e.value() - 3.0).abs() < 1e-12, "unit weight adopts peer");
    }

    #[test]
    fn merge_into_uninitialized_adopts_peer() {
        let mut e = Ema::new(0.2);
        e.merge(7.0, 0.25);
        assert!(e.is_initialized());
        assert!((e.value() - 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "merge weight")]
    fn merge_rejects_out_of_range_weight() {
        let mut e = Ema::new(0.2);
        e.merge(1.0, 1.5);
    }

    #[test]
    fn decaying_counter_decays_by_factor_per_period() {
        let mut c = DecayingCounter::new(0.9, 3600.0);
        c.add(0.0, 10.0);
        let one_hour = c.value_at(3600.0);
        assert!((one_hour - 9.0).abs() < 1e-9);
        let two_hours = c.value_at(7200.0);
        assert!((two_hours - 8.1).abs() < 1e-9);
    }

    #[test]
    fn decaying_counter_accumulates() {
        let mut c = DecayingCounter::new(0.5, 1.0);
        c.add(0.0, 4.0);
        c.add(1.0, 4.0);
        // First 4 decayed to 2, plus fresh 4.
        assert!((c.value_at(1.0) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn decaying_counter_is_monotone_in_time() {
        let mut c = DecayingCounter::new(0.9, 10.0);
        c.add(0.0, 100.0);
        let mut prev = c.value_at(0.0);
        for t in 1..50 {
            let v = c.value_at(t as f64);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn decaying_counter_ignores_time_travel() {
        let mut c = DecayingCounter::new(0.9, 1.0);
        c.add(10.0, 5.0);
        // Asking about the past returns the undecayed value rather than
        // amplifying it.
        assert!((c.value_at(5.0) - 5.0).abs() < 1e-9);
    }
}
