//! Fixed-bin histograms and empirical CDFs.
//!
//! Used to reproduce the distribution-shaped figures: similarity CDFs
//! (Fig. 3a), access-count CDFs (Fig. 10), score densities (Figs. 27/28)
//! and the request-density plot (Fig. 2a).

/// A histogram over `[lo, hi)` with uniform bins.
///
/// Samples below `lo` land in the first bin and samples at or above `hi`
/// land in the last bin, so mass is never silently dropped.
///
/// # Examples
///
/// ```
/// use ic_stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
/// h.record(3.5);
/// assert_eq!(h.count(), 1);
/// assert_eq!(h.bin_counts()[3], 1);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins >= 1` uniform bins.
    /// Returns `None` for degenerate ranges.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Option<Self> {
        if !(hi > lo) || bins == 0 || !lo.is_finite() || !hi.is_finite() {
            return None;
        }
        Some(Self {
            lo,
            hi,
            counts: vec![0; bins],
        })
    }

    /// Records one sample (clamped into range).
    pub fn record(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Per-bin raw counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Density per bin (fractions summing to 1; all zeros when empty).
    pub fn densities(&self) -> Vec<f64> {
        let total = self.count();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Midpoint of each bin, for plotting.
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + w * (i as f64 + 0.5))
            .collect()
    }

    /// The `[lo, hi)` range.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }
}

/// Empirical cumulative distribution function over a finite sample.
///
/// # Examples
///
/// ```
/// use ic_stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
/// assert_eq!(cdf.fraction_above(4.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples; non-finite values are discarded.
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite after retain"));
        Self { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0.0 when empty).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x`.
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// Evaluates the CDF at evenly spaced points for plotting, returning
    /// `(x, F(x))` pairs.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        (0..points)
            .map(|i| {
                let x = if points == 1 {
                    hi
                } else {
                    lo + (hi - lo) * i as f64 / (points - 1) as f64
                };
                (x, self.fraction_at_or_below(x))
            })
            .collect()
    }

    /// The underlying sorted samples.
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_places_samples_in_bins() {
        let mut h = Histogram::new(0.0, 1.0, 4).unwrap();
        h.record(0.1);
        h.record(0.3);
        h.record(0.6);
        h.record(0.9);
        assert_eq!(h.bin_counts(), &[1, 1, 1, 1]);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 2).unwrap();
        h.record(-5.0);
        h.record(5.0);
        h.record(1.0); // Exactly `hi` lands in the last bin.
        assert_eq!(h.bin_counts(), &[1, 2]);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn histogram_densities_sum_to_one() {
        let mut h = Histogram::new(-3.0, 3.0, 12).unwrap();
        for i in 0..1000 {
            h.record((i as f64 / 167.0).sin() * 3.0);
        }
        let total: f64 = h.densities().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_degenerate_ranges() {
        assert!(Histogram::new(1.0, 1.0, 4).is_none());
        assert!(Histogram::new(2.0, 1.0, 4).is_none());
        assert!(Histogram::new(0.0, 1.0, 0).is_none());
    }

    #[test]
    fn histogram_bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 2).unwrap();
        assert_eq!(h.bin_centers(), vec![0.25, 0.75]);
    }

    #[test]
    fn cdf_basic_fractions() {
        let cdf = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(cdf.fraction_at_or_below(0.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.25);
        assert_eq!(cdf.fraction_at_or_below(2.5), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.fraction_above(2.5), 0.5);
    }

    #[test]
    fn cdf_discards_non_finite() {
        let cdf = Cdf::from_samples(vec![1.0, f64::NAN, 2.0, f64::INFINITY]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_curve_is_monotone() {
        let cdf = Cdf::from_samples((0..500).map(|i| ((i * 37) % 101) as f64).collect());
        let curve = cdf.curve(50);
        assert_eq!(curve.len(), 50);
        for w in curve.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert_eq!(curve.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_empty_is_safe() {
        let cdf = Cdf::from_samples(vec![]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert!(cdf.curve(10).is_empty());
    }
}
