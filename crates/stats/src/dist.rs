//! Random distributions implemented from scratch on top of `rand`.
//!
//! The offline crate set does not include `rand_distr`, so the distributions
//! the workload generators and simulators need are implemented here:
//!
//! - [`Normal`] / [`LogNormal`] — Box–Muller (both variates used via caching).
//! - [`Exponential`] — inverse CDF.
//! - [`Poisson`] — Knuth's product method for small means, normal
//!   approximation with continuity correction for large means.
//! - [`Gamma`] — Marsaglia–Tsang squeeze method, with the alpha < 1 boost.
//! - [`Beta`] — ratio of gammas, used by the Thompson-sampling router.
//! - [`Dirichlet`] — normalized gammas, used for skill mixes.
//! - [`Zipf`] — inverse-CDF over precomputed weights, used for topic
//!   popularity (long-tail example reuse, Fig. 10).
//!
//! All samplers take `&mut impl Rng` so callers control determinism.

use rand::{Rng, RngExt};

/// Error returned when constructing a distribution with invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError(pub &'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Gaussian distribution sampled with the Box–Muller transform.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation. `std_dev` must be non-negative and finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !std_dev.is_finite() || std_dev < 0.0 || !mean.is_finite() {
            return Err(ParamError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Self { mean, std_dev })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Draws one standard-normal variate via Box–Muller.
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Box–Muller; u1 is kept away from zero so ln() is finite.
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and scale `sigma` (of the
    /// underlying normal).
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(Self {
            inner: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal from the desired *median* and multiplicative
    /// spread (sigma of the log), which is how token-length distributions
    /// are specified in `ic-workloads`.
    pub fn from_median(median: f64, sigma: f64) -> Result<Self, ParamError> {
        if median <= 0.0 || !median.is_finite() {
            return Err(ParamError("LogNormal median must be positive"));
        }
        Self::new(median.ln(), sigma)
    }

    /// Draws one sample (always positive).
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// Exponential distribution with rate `lambda`, sampled by inverse CDF.
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda > 0`.
    pub fn new(rate: f64) -> Result<Self, ParamError> {
        if !(rate > 0.0) || !rate.is_finite() {
            return Err(ParamError("Exponential requires rate > 0"));
        }
        Ok(Self { rate })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }

    /// The mean (`1 / rate`) of the distribution.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// Poisson distribution.
///
/// Knuth's method is exact but O(lambda); above a threshold the normal
/// approximation with continuity correction is used, which is accurate to
/// well under the noise floor of any experiment in this repository.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda >= 0`.
    pub fn new(lambda: f64) -> Result<Self, ParamError> {
        if !(lambda >= 0.0) || !lambda.is_finite() {
            return Err(ParamError("Poisson requires lambda >= 0"));
        }
        Ok(Self { lambda })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below e^-lambda.
            let l = (-self.lambda).exp();
            let mut k: u64 = 0;
            let mut p = 1.0;
            loop {
                p *= rng.random::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let x = self.lambda + self.lambda.sqrt() * standard_normal(rng);
            x.round().max(0.0) as u64
        }
    }
}

/// Gamma distribution (shape/scale parameterization), Marsaglia–Tsang.
#[derive(Debug, Clone, Copy)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with `shape > 0` and `scale > 0`.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape > 0.0) || !(scale > 0.0) || !shape.is_finite() || !scale.is_finite() {
            return Err(ParamError("Gamma requires shape > 0 and scale > 0"));
        }
        Ok(Self { shape, scale })
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        self.scale * sample_gamma_shape(self.shape, rng)
    }
}

/// Samples `Gamma(shape, 1)` with the Marsaglia–Tsang method.
fn sample_gamma_shape(shape: f64, rng: &mut impl Rng) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        return sample_gamma_shape(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta distribution, sampled as a ratio of gammas.
///
/// Used by the Beta–Bernoulli Thompson-sampling bandit (Appendix A.2 of the
/// paper maintains a Beta posterior per model).
#[derive(Debug, Clone, Copy)]
pub struct Beta {
    a: f64,
    b: f64,
}

impl Beta {
    /// Creates a beta distribution with `alpha > 0` and `beta > 0`.
    pub fn new(a: f64, b: f64) -> Result<Self, ParamError> {
        if !(a > 0.0) || !(b > 0.0) || !a.is_finite() || !b.is_finite() {
            return Err(ParamError("Beta requires alpha > 0 and beta > 0"));
        }
        Ok(Self { a, b })
    }

    /// Draws one sample in `(0, 1)`.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let x = sample_gamma_shape(self.a, rng);
        let y = sample_gamma_shape(self.b, rng);
        if x + y == 0.0 {
            return 0.5;
        }
        x / (x + y)
    }

    /// The mean `alpha / (alpha + beta)`.
    pub fn mean(&self) -> f64 {
        self.a / (self.a + self.b)
    }
}

/// Dirichlet distribution over `k` categories, sampled via gammas.
#[derive(Debug, Clone)]
pub struct Dirichlet {
    alpha: Vec<f64>,
}

impl Dirichlet {
    /// Creates a Dirichlet with the given concentration vector (all > 0,
    /// at least two entries).
    pub fn new(alpha: Vec<f64>) -> Result<Self, ParamError> {
        if alpha.len() < 2 {
            return Err(ParamError("Dirichlet needs at least 2 categories"));
        }
        if alpha.iter().any(|&a| !(a > 0.0) || !a.is_finite()) {
            return Err(ParamError("Dirichlet concentrations must be > 0"));
        }
        Ok(Self { alpha })
    }

    /// Creates a symmetric Dirichlet with `k` categories and concentration
    /// `alpha`.
    pub fn symmetric(k: usize, alpha: f64) -> Result<Self, ParamError> {
        Self::new(vec![alpha; k])
    }

    /// Draws one probability vector (entries sum to 1).
    pub fn sample(&self, rng: &mut impl Rng) -> Vec<f64> {
        let mut out: Vec<f64> = self
            .alpha
            .iter()
            .map(|&a| sample_gamma_shape(a, rng).max(1e-300))
            .collect();
        let sum: f64 = out.iter().sum();
        for v in &mut out {
            *v /= sum;
        }
        out
    }
}

/// Zipf distribution over ranks `0..n` with exponent `s`.
///
/// Rank 0 is the most popular item. Sampling is by binary search over the
/// precomputed cumulative weights, so draws are O(log n).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n >= 1` ranks with exponent
    /// `s >= 0` (s = 0 degenerates to uniform).
    pub fn new(n: usize, s: f64) -> Result<Self, ParamError> {
        if n == 0 {
            return Err(ParamError("Zipf requires n >= 1"));
        }
        if !(s >= 0.0) || !s.is_finite() {
            return Err(ParamError("Zipf requires exponent >= 0"));
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cumulative.push(acc);
        }
        Ok(Self { cumulative })
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u: f64 = rng.random::<f64>() * total;
        // First index whose cumulative weight exceeds u.
        match self
            .cumulative
            .binary_search_by(|w| w.partial_cmp(&u).expect("weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }

    /// Probability mass of a given rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (self.cumulative[rank] - lo) / total
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;
    use crate::welford::RunningStats;

    fn stats_of(mut f: impl FnMut(&mut rand::rngs::StdRng) -> f64, n: usize) -> RunningStats {
        let mut rng = rng_from_seed(2024);
        let mut s = RunningStats::new();
        for _ in 0..n {
            s.push(f(&mut rng));
        }
        s
    }

    #[test]
    fn normal_moments_match() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let s = stats_of(|r| d.sample(r), 50_000);
        assert!((s.mean() - 3.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.05, "std {}", s.std_dev());
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let d = LogNormal::from_median(100.0, 0.5).unwrap();
        let mut rng = rng_from_seed(5);
        let mut samples: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 100.0).abs() / 100.0 < 0.05, "median {median}");
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(0.25).unwrap();
        let s = stats_of(|r| d.sample(r), 50_000);
        assert!((s.mean() - 4.0).abs() < 0.1, "mean {}", s.mean());
    }

    #[test]
    fn poisson_small_and_large_means() {
        for lambda in [0.5, 4.0, 80.0] {
            let d = Poisson::new(lambda).unwrap();
            let s = stats_of(|r| d.sample(r) as f64, 30_000);
            assert!(
                (s.mean() - lambda).abs() < 0.05 * lambda.max(2.0),
                "lambda {lambda} mean {}",
                s.mean()
            );
            // Poisson variance equals the mean.
            assert!(
                (s.variance() - lambda).abs() < 0.1 * lambda.max(2.0),
                "lambda {lambda} var {}",
                s.variance()
            );
        }
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let d = Poisson::new(0.0).unwrap();
        let mut rng = rng_from_seed(1);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    fn gamma_moments_match() {
        // Gamma(shape k, scale th): mean k*th, var k*th^2.
        for (k, th) in [(0.5, 2.0), (2.0, 1.5), (9.0, 0.5)] {
            let d = Gamma::new(k, th).unwrap();
            let s = stats_of(|r| d.sample(r), 60_000);
            assert!(
                (s.mean() - k * th).abs() < 0.05 * (k * th),
                "k={k} mean {}",
                s.mean()
            );
            assert!(
                (s.variance() - k * th * th).abs() < 0.12 * (k * th * th),
                "k={k} var {}",
                s.variance()
            );
        }
    }

    #[test]
    fn beta_mean_matches_and_is_bounded() {
        let d = Beta::new(2.0, 6.0).unwrap();
        let mut rng = rng_from_seed(3);
        let mut s = RunningStats::new();
        for _ in 0..30_000 {
            let x = d.sample(&mut rng);
            assert!((0.0..=1.0).contains(&x));
            s.push(x);
        }
        assert!((s.mean() - 0.25).abs() < 0.01, "mean {}", s.mean());
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let d = Dirichlet::symmetric(4, 0.5).unwrap();
        let mut rng = rng_from_seed(9);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            let sum: f64 = v.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn zipf_rank_zero_dominates() {
        let d = Zipf::new(1000, 1.1).unwrap();
        let mut rng = rng_from_seed(11);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[999] * 10);
        // The empirical head mass should match the pmf within noise.
        let head = counts[0] as f64 / 100_000.0;
        assert!((head - d.pmf(0)).abs() < 0.01);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let d = Zipf::new(10, 0.0).unwrap();
        let mut rng = rng_from_seed(13);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 100_000.0 - 0.1).abs() < 0.01);
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let d = Zipf::new(3, 2.0).unwrap();
        let mut rng = rng_from_seed(17);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) < 3);
        }
    }
}
