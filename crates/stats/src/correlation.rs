//! Correlation measures.
//!
//! Figure 7 of the paper reports the Pearson correlation between example
//! similarity and example helpfulness across five datasets (weak, 0.04 to
//! 0.22), which motivates the two-stage selector. `fig07_correlation`
//! regenerates that figure with [`pearson`]; [`spearman`] is provided for
//! the rank-based sanity checks in tests.

/// Pearson product-moment correlation coefficient of two equal-length
/// slices. Returns `None` if lengths differ, fewer than 2 points are
/// supplied, or either side has zero variance.
///
/// # Examples
///
/// ```
/// use ic_stats::pearson;
///
/// let x = [1.0, 2.0, 3.0];
/// let y = [2.0, 4.0, 6.0];
/// assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx.sqrt() * syy.sqrt()))
}

/// Spearman rank correlation (Pearson over average ranks, handling ties).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

/// Average ranks (1-based) with ties sharing the mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite inputs"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 tie; assign their mean.
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = mean_rank;
        }
        i = j + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_and_negative() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_data_is_near_zero() {
        // Deterministic pseudo-random pairs.
        let x: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 104729) as f64).collect();
        let y: Vec<f64> = (0..2000).map(|i| ((i * 6007) % 99991) as f64).collect();
        let r = pearson(&x, &y).unwrap();
        assert!(r.abs() < 0.1, "expected weak correlation, got {r}");
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[3.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let x = [0.2, 0.5, 0.1, 0.9, 0.3, 0.8];
        let y = [1.2, 0.5, 2.1, 0.8, 1.3, 0.1];
        let r = pearson(&x, &y).unwrap();
        assert!((-1.0..=1.0).contains(&r));
    }

    #[test]
    fn spearman_is_invariant_to_monotone_transform() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0]; // x^3: monotone, nonlinear.
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson of the same data is < 1 because the relation is nonlinear.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
