//! Statistics substrate for the IC-Cache reproduction.
//!
//! The IC-Cache paper leans on a handful of statistical primitives that
//! appear all over the system: exponential moving averages for load tracking
//! (§4.2) and example-gain tracking (§4.3), decaying counters for cache
//! eviction (§4.3, 0.9/hour decay), latency percentiles (§6.4), empirical
//! CDFs (Figs. 3, 10), Pearson correlation (Fig. 7), and a collection of
//! random distributions used by the workload generators and the simulator.
//!
//! Only the `rand` crate is available offline, so the distributions that
//! would normally come from `rand_distr` (Normal, Gamma, Beta, Dirichlet,
//! Zipf, Poisson, ...) are implemented here from scratch, together with the
//! small numeric utilities the rest of the workspace shares.
//!
//! # Examples
//!
//! ```
//! use ic_stats::dist::Normal;
//! use ic_stats::rng::rng_from_seed;
//!
//! let mut rng = rng_from_seed(7);
//! let n = Normal::new(0.0, 1.0).unwrap();
//! let x = n.sample(&mut rng);
//! assert!(x.is_finite());
//! ```

pub mod correlation;
pub mod dist;
pub mod ema;
pub mod histogram;
pub mod percentile;
pub mod rng;
pub mod welford;

pub use correlation::{pearson, spearman};
pub use dist::{Beta, Dirichlet, Exponential, Gamma, LogNormal, Normal, Poisson, Zipf};
pub use ema::{DecayingCounter, Ema};
pub use histogram::{Cdf, Histogram};
pub use percentile::{PercentileSnapshot, Percentiles};
pub use rng::{SeedStream, rng_from_seed, split_mix64};
pub use welford::RunningStats;

/// Numerically-stable logistic sigmoid.
///
/// Used by the quality model (`ic-llmsim`), the proxy helpfulness model
/// (`ic-selector`) and the RouteLLM baseline classifier.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let e = (-x).exp();
        1.0 / (1.0 + e)
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Clamps a value into the closed unit interval.
#[inline]
pub fn clamp01(x: f64) -> f64 {
    x.clamp(0.0, 1.0)
}

/// Linear interpolation between `a` and `b` by `t in [0, 1]`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_monotonic_and_bounded() {
        let mut prev = 0.0;
        for i in -100..=100 {
            let x = i as f64 / 10.0;
            let y = sigmoid(x);
            assert!((0.0..=1.0).contains(&y));
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    fn sigmoid_midpoint_is_half() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sigmoid_extremes_saturate() {
        assert!(sigmoid(100.0) > 1.0 - 1e-12);
        assert!(sigmoid(-100.0) < 1e-12);
        // Large magnitudes must not overflow to NaN.
        assert!(sigmoid(1e308).is_finite());
        assert!(sigmoid(-1e308).is_finite());
    }

    #[test]
    fn clamp01_clamps() {
        assert_eq!(clamp01(-0.5), 0.0);
        assert_eq!(clamp01(1.5), 1.0);
        assert_eq!(clamp01(0.25), 0.25);
    }

    #[test]
    fn lerp_endpoints() {
        assert_eq!(lerp(2.0, 4.0, 0.0), 2.0);
        assert_eq!(lerp(2.0, 4.0, 1.0), 4.0);
        assert_eq!(lerp(2.0, 4.0, 0.5), 3.0);
    }
}
