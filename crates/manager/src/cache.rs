//! The example cache: plaintext storage plus utility bookkeeping.

use std::collections::HashMap;

use ic_llmsim::{Example, ExampleId, ExampleStore};
use ic_stats::{DecayingCounter, Ema};

/// Decay factor for offload gains (§4.3: "a decay factor of 0.9 every
/// hour").
pub const GAIN_DECAY: f64 = 0.9;

/// Decay period in seconds.
pub const GAIN_PERIOD_S: f64 = 3600.0;

/// One cached example with its management metadata.
#[derive(Debug, Clone)]
pub struct CachedExample {
    /// The example payload.
    pub example: Example,
    /// Decayed count of successful offloads this example enabled — the
    /// knapsack value (§4.3).
    pub offload_gain: DecayingCounter,
    /// EMA of the replay potential `G(e)` (§4.3).
    pub replay_gain: Ema,
    /// Raw access count (Fig. 10).
    pub accesses: u64,
    /// Insertion timestamp (seconds).
    pub inserted_at: f64,
}

/// The example cache.
///
/// Stores plaintext examples (≈1 GB per million LMSys examples in the
/// paper, §4.3) with the statistics the replay planner and eviction policy
/// need. Capacity enforcement itself lives in [`crate::evict`]; the cache
/// only tracks byte totals.
///
/// # Examples
///
/// ```
/// use ic_llmsim::ExampleStore;
/// use ic_manager::ExampleCache;
///
/// let cache = ExampleCache::new();
/// assert_eq!(cache.example_count(), 0);
/// assert_eq!(cache.total_bytes(), 0);
/// ```
#[derive(Debug, Default)]
pub struct ExampleCache {
    entries: HashMap<ExampleId, CachedExample>,
    total_bytes: usize,
}

impl ExampleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an example at time `now`; replaces any entry with the same
    /// id. Returns false if it replaced an existing entry.
    pub fn insert(&mut self, example: Example, now: f64) -> bool {
        let bytes = example.byte_len();
        let entry = CachedExample {
            example,
            offload_gain: DecayingCounter::new(GAIN_DECAY, GAIN_PERIOD_S),
            replay_gain: Ema::new(0.2),
            accesses: 0,
            inserted_at: now,
        };
        let old = self.entries.insert(entry.example.id, entry);
        if let Some(old) = &old {
            self.total_bytes -= old.example.byte_len();
        }
        self.total_bytes += bytes;
        old.is_none()
    }

    /// Removes an example, returning it.
    pub fn remove(&mut self, id: ExampleId) -> Option<Example> {
        let entry = self.entries.remove(&id)?;
        self.total_bytes -= entry.example.byte_len();
        Some(entry.example)
    }

    /// Looks up an entry.
    pub fn entry(&self, id: ExampleId) -> Option<&CachedExample> {
        self.entries.get(&id)
    }

    /// Mutable entry access (used by the replay executor).
    pub fn entry_mut(&mut self, id: ExampleId) -> Option<&mut CachedExample> {
        self.entries.get_mut(&id)
    }

    /// Records a retrieval hit.
    pub fn record_access(&mut self, id: ExampleId) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.accesses += 1;
        }
    }

    /// Records a successful offload enabled by this example (§4.3's
    /// efficiency gain; the knapsack value accrues here).
    pub fn record_offload_gain(&mut self, id: ExampleId, now: f64, gain: f64) {
        if let Some(e) = self.entries.get_mut(&id) {
            e.offload_gain.add(now, gain.max(0.0));
        }
    }

    /// Records usage feedback and folds it into the replay-gain EMA:
    /// `G(e) = (1 - normalized_response_quality) * normalized_model_cost`
    /// (§4.3).
    pub fn record_usage_feedback(&mut self, id: ExampleId, response_quality: f64, model_cost: f64) {
        if let Some(e) = self.entries.get_mut(&id) {
            let g = (1.0 - response_quality.clamp(0.0, 1.0)) * model_cost.clamp(0.0, 1.0);
            e.replay_gain.observe(g);
        }
    }

    /// Number of cached examples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total plaintext bytes stored.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Iterates over entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&ExampleId, &CachedExample)> {
        self.entries.iter()
    }

    /// All ids, sorted (deterministic order for planners).
    pub fn sorted_ids(&self) -> Vec<ExampleId> {
        let mut ids: Vec<ExampleId> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Access counts (Fig. 10's long-tail histogram source).
    pub fn access_counts(&self) -> Vec<u64> {
        self.entries.values().map(|e| e.accesses).collect()
    }
}

impl ExampleStore for ExampleCache {
    fn get_example(&self, id: ExampleId) -> Option<&Example> {
        self.entries.get(&id).map(|e| &e.example)
    }

    fn example_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelId, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn sample_examples(n: usize) -> Vec<Example> {
        WorkloadGenerator::new(Dataset::MsMarco, 41).generate_examples(
            n,
            &ModelSpec::gemma_2_27b(),
            ModelId(0),
            &Generator::new(),
        )
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut cache = ExampleCache::new();
        let exs = sample_examples(5);
        for e in &exs {
            assert!(cache.insert(e.clone(), 0.0));
        }
        assert_eq!(cache.len(), 5);
        assert!(cache.get_example(exs[0].id).is_some());
        let removed = cache.remove(exs[0].id).unwrap();
        assert_eq!(removed.id, exs[0].id);
        assert!(cache.get_example(exs[0].id).is_none());
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut cache = ExampleCache::new();
        let exs = sample_examples(10);
        let expected: usize = exs.iter().map(|e| e.byte_len()).sum();
        for e in &exs {
            cache.insert(e.clone(), 0.0);
        }
        assert_eq!(cache.total_bytes(), expected);
        cache.remove(exs[3].id);
        assert_eq!(cache.total_bytes(), expected - exs[3].byte_len());
    }

    #[test]
    fn reinsert_replaces_and_reaccounts() {
        let mut cache = ExampleCache::new();
        let mut e = sample_examples(1).pop().unwrap();
        cache.insert(e.clone(), 0.0);
        let before = cache.total_bytes();
        e.response_text.push_str(" extended response text");
        assert!(!cache.insert(e.clone(), 1.0));
        assert_eq!(cache.len(), 1);
        assert!(cache.total_bytes() > before);
        assert_eq!(cache.total_bytes(), e.byte_len());
    }

    #[test]
    fn offload_gain_decays_hourly() {
        let mut cache = ExampleCache::new();
        let e = sample_examples(1).pop().unwrap();
        let id = e.id;
        cache.insert(e, 0.0);
        cache.record_offload_gain(id, 0.0, 10.0);
        let entry = cache.entry(id).unwrap();
        let fresh = entry.offload_gain.value_at(0.0);
        let later = entry.offload_gain.value_at(3600.0);
        assert!((fresh - 10.0).abs() < 1e-9);
        assert!((later - 9.0).abs() < 1e-9, "0.9/hour decay");
    }

    #[test]
    fn replay_gain_matches_paper_formula() {
        let mut cache = ExampleCache::new();
        let e = sample_examples(1).pop().unwrap();
        let id = e.id;
        cache.insert(e, 0.0);
        // Low-quality response served on an expensive model => big G(e).
        cache.record_usage_feedback(id, 0.2, 1.0);
        let g = cache.entry(id).unwrap().replay_gain.value();
        assert!((g - 0.8).abs() < 1e-9);
        // High-quality on a cheap model => tiny G(e); EMA moves toward it.
        cache.record_usage_feedback(id, 0.95, 0.1);
        let g2 = cache.entry(id).unwrap().replay_gain.value();
        assert!(g2 < g);
    }

    #[test]
    fn access_counting_feeds_fig10() {
        let mut cache = ExampleCache::new();
        let exs = sample_examples(3);
        for e in &exs {
            cache.insert(e.clone(), 0.0);
        }
        for _ in 0..7 {
            cache.record_access(exs[0].id);
        }
        cache.record_access(exs[1].id);
        let mut counts = cache.access_counts();
        counts.sort_unstable();
        assert_eq!(counts, vec![0, 1, 7]);
    }

    #[test]
    fn unknown_id_operations_are_noops() {
        let mut cache = ExampleCache::new();
        cache.record_access(ExampleId(9));
        cache.record_offload_gain(ExampleId(9), 0.0, 1.0);
        cache.record_usage_feedback(ExampleId(9), 0.5, 0.5);
        assert!(cache.remove(ExampleId(9)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn sorted_ids_are_deterministic() {
        let mut cache = ExampleCache::new();
        for e in sample_examples(20) {
            cache.insert(e, 0.0);
        }
        let a = cache.sorted_ids();
        let b = cache.sorted_ids();
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
    }
}
