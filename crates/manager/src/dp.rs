//! Differentially-private synthetic example pool (§4.3, Fig. 21).
//!
//! For deployments with strict privacy requirements, the historical
//! example cache is replaced by a DP-synthesized one: each synthetic
//! example perturbs the original's semantic vector with the Gaussian
//! mechanism and regenerates surface text, so "an adversary with access to
//! the synthetic examples cannot infer (with high probability) the
//! presence or value of any specific example in the original dataset."
//! Synthesis costs some utility — Fig. 21 shows a slight quality drop that
//! still beats the no-IC baseline — which here appears as added embedding
//! noise plus a small response-quality penalty.

use ic_embed::Embedding;
use ic_llmsim::{Example, ExampleId};
use ic_stats::rng::rng_from_seed;

/// Differential-privacy configuration for pool synthesis.
#[derive(Debug, Clone)]
pub struct DpConfig {
    /// Privacy budget epsilon (> 0); smaller = more private = more noise.
    pub epsilon: f64,
    /// Failure probability delta in (0, 1).
    pub delta: f64,
    /// L2 sensitivity of the released vector. Synthesis aggregates over
    /// topic clusters of records before releasing (as DP synthesizers
    /// do), so the per-record sensitivity is well below the 2.0 bound of
    /// a raw unit embedding.
    pub sensitivity: f64,
    /// Response-quality penalty of synthesis artifacts.
    pub quality_penalty: f64,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            epsilon: 8.0,
            delta: 1e-5,
            sensitivity: 0.5,
            quality_penalty: 0.05,
        }
    }
}

impl DpConfig {
    /// Gaussian-mechanism noise scale:
    /// `sigma = sensitivity * sqrt(2 ln(1.25/delta)) / epsilon`.
    pub fn noise_sigma(&self) -> f64 {
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must be in (0, 1)"
        );
        self.sensitivity * (2.0 * (1.25 / self.delta).ln()).sqrt() / self.epsilon
    }
}

/// Synthesizes a DP example pool from an original pool.
///
/// Each synthetic example gets a fresh id (offset into a dedicated id
/// range), a noised embedding/latent, regenerated placeholder text, and a
/// penalized quality. The original pool is not modified.
pub fn synthesize_pool(originals: &[Example], config: &DpConfig, seed: u64) -> Vec<Example> {
    let sigma = config.noise_sigma();
    let mut rng = rng_from_seed(seed ^ 0xD9_5E_ED);
    originals
        .iter()
        .enumerate()
        .map(|(i, orig)| {
            let per_component = sigma / (orig.latent.dim() as f64).sqrt();
            let mut latent = orig.latent.clone();
            latent.add_scaled(
                &Embedding::gaussian(latent.dim(), per_component, &mut rng),
                1.0,
            );
            let latent = latent.normalized();
            let mut embedding = orig.embedding.clone();
            embedding.add_scaled(
                &Embedding::gaussian(embedding.dim(), per_component, &mut rng),
                1.0,
            );
            let embedding = embedding.normalized();
            Example {
                id: ExampleId(0x4000_0000_0000_0000 + i as u64),
                topic: orig.topic,
                latent,
                embedding,
                skills: orig.skills,
                task: orig.task,
                origin_difficulty: orig.origin_difficulty,
                request_text: format!("dp-synthetic request #{i}"),
                response_text: format!("dp-synthetic response #{i}"),
                request_tokens: orig.request_tokens,
                response_tokens: orig.response_tokens,
                quality: (orig.quality - config.quality_penalty).max(0.0),
                source_model: orig.source_model,
                replay_count: 0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelId, ModelSpec};
    use ic_stats::RunningStats;
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn originals(n: usize) -> Vec<Example> {
        WorkloadGenerator::new(Dataset::MsMarco, 71).generate_examples(
            n,
            &ModelSpec::gemma_2_27b(),
            ModelId(0),
            &Generator::new(),
        )
    }

    #[test]
    fn noise_sigma_follows_gaussian_mechanism() {
        let strict = DpConfig {
            epsilon: 1.0,
            ..DpConfig::default()
        };
        let loose = DpConfig {
            epsilon: 10.0,
            ..DpConfig::default()
        };
        assert!(strict.noise_sigma() > loose.noise_sigma() * 5.0);
    }

    #[test]
    fn synthetic_pool_preserves_size_and_ids_are_fresh() {
        let orig = originals(40);
        let synth = synthesize_pool(&orig, &DpConfig::default(), 1);
        assert_eq!(synth.len(), orig.len());
        for (o, s) in orig.iter().zip(&synth) {
            assert_ne!(o.id, s.id);
            assert!(s.id.0 >= 0x4000_0000_0000_0000);
        }
    }

    #[test]
    fn smaller_epsilon_means_less_similarity_to_original() {
        let orig = originals(60);
        let sim_under = |eps: f64| -> f64 {
            let synth = synthesize_pool(
                &orig,
                &DpConfig {
                    epsilon: eps,
                    ..DpConfig::default()
                },
                2,
            );
            let mut s = RunningStats::new();
            for (o, n) in orig.iter().zip(&synth) {
                s.push(o.latent.cosine(&n.latent));
            }
            s.mean()
        };
        let private = sim_under(2.0);
        let loose = sim_under(32.0);
        assert!(
            private < loose - 0.05,
            "more privacy must mean more distortion: {private} vs {loose}"
        );
        assert!(loose > 0.8, "loose budget should track originals: {loose}");
    }

    #[test]
    fn quality_penalty_is_applied() {
        let orig = originals(20);
        let synth = synthesize_pool(&orig, &DpConfig::default(), 3);
        for (o, s) in orig.iter().zip(&synth) {
            assert!(s.quality <= o.quality);
            assert!((o.quality - s.quality - 0.05).abs() < 1e-9 || s.quality == 0.0);
        }
    }

    #[test]
    fn text_is_fully_replaced() {
        let orig = originals(5);
        let synth = synthesize_pool(&orig, &DpConfig::default(), 4);
        for s in &synth {
            assert!(s.request_text.starts_with("dp-synthetic"));
            assert!(s.response_text.starts_with("dp-synthetic"));
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_epsilon_is_rejected() {
        let cfg = DpConfig {
            epsilon: 0.0,
            ..DpConfig::default()
        };
        let _ = cfg.noise_sigma();
    }
}
