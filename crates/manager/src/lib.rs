//! The IC-Cache Example Manager (§4.3).
//!
//! The manager owns the example pool and keeps it useful over time:
//!
//! - [`cache`] — the plaintext example cache with access statistics,
//!   decayed offload-gain counters (0.9/hour, §4.3), and the replay-gain
//!   EMA `G(e) = (1 - normalized_response_quality) * normalized_model_cost`.
//! - [`shard`] — N topic-hash shards over that cache with per-shard
//!   eviction and a periodic cross-shard budget rebalance (the knapsack DP
//!   re-divides the global byte budget by where the gains live), so
//!   selection and eviction bookkeeping scale with shard size.
//! - [`replay`] — cost-aware example replay: rank by `G(e)`, replay
//!   best-of-n during off-peak hours, stop at the online cut-off where
//!   resource savings no longer exceed the one-time replay cost, and cap
//!   any example at five replay iterations (§5).
//! - [`evict`] — the knapsack eviction policy for bounded memory: weights
//!   are plaintext bytes, values are decayed offload gains; a greedy
//!   density solver runs in production and an exact DP solver validates it
//!   (and serves small instances).
//! - [`admission`] — privacy admission control: sensitive-span scrubbing
//!   (the spaCy path) or rejection, per-application choice (§4.3
//!   "How Does IC-Cache Respect Privacy?").
//! - [`dp`] — the differentially-private synthetic example pool for
//!   deployments that need formal guarantees (Fig. 21).
//! - [`manager`] — the [`ExampleManager`] facade the serving pipeline
//!   talks to.

pub mod admission;
pub mod cache;
pub mod dp;
pub mod evict;
pub mod manager;
pub mod replay;
pub mod shard;

pub use admission::{Admission, AdmissionPolicy};
pub use cache::{CachedExample, ExampleCache};
pub use dp::{DpConfig, synthesize_pool};
pub use evict::{KnapsackItem, dp_knapsack, greedy_knapsack};
pub use manager::{ExampleManager, ManagerConfig, ReplayReport};
pub use replay::{ReplayConfig, plan_replay, replay_example};
pub use shard::{DEFAULT_SHARDS, ShardedExampleCache};
