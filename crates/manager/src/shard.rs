//! Topic-hash sharding of the example cache.
//!
//! "Efficient Prompt Caching via Embedding Similarity" motivates
//! partitioning an example store by embedding locality; here the workload
//! generators give every request/example a ground-truth topic whose hash
//! is the cheapest locality key, so the cache is split into `N` shards by
//! `split_mix64(topic) % N`. Same-topic examples land on the same shard,
//! which keeps each shard's content semantically clustered and lets
//! selection/eviction bookkeeping scale with shard size instead of store
//! size.
//!
//! Capacity is enforced per shard, but budgets are *not* static: a
//! periodic cross-shard rebalance ([`ShardedExampleCache::rebalance`])
//! re-divides the global byte budget according to where the decayed
//! offload gains currently live. The division is solved with the same
//! knapsack machinery as §4.3 eviction: each shard's gain-density curve is
//! cut into byte quanta (non-increasing marginal value, so a 0/1 solution
//! is a per-shard prefix) and the exact DP solver picks the quanta mix
//! that retains the most gain. Any capacity the DP leaves unclaimed —
//! quanta with zero gain are never *worth* taking — is handed back
//! proportionally to shard occupancy so that gain-less examples are still
//! kept while space allows, exactly as the unsharded policy did.

use std::collections::HashMap;

use ic_llmsim::{Example, ExampleId, ExampleStore};
use ic_stats::rng::split_mix64;

use crate::cache::{CachedExample, ExampleCache};
use crate::evict::{KnapsackItem, dp_knapsack, items_from_cache, plan_eviction};

/// Default shard count for new managers.
pub const DEFAULT_SHARDS: usize = 4;

/// Budget quanta per rebalance: the DP divides the global capacity into
/// this many slices (O(quanta²) work — trivial, and fine-grained enough
/// that allocation error is under 2% of capacity).
const REBALANCE_QUANTA: usize = 64;

/// An example cache split into topic-hash shards.
#[derive(Debug)]
pub struct ShardedExampleCache {
    shards: Vec<ExampleCache>,
    /// Which shard each cached id lives on.
    directory: HashMap<ExampleId, usize>,
}

impl ShardedExampleCache {
    /// Creates a cache with `shards` (at least 1) empty shards.
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1);
        Self {
            shards: (0..n).map(|_| ExampleCache::new()).collect(),
            directory: HashMap::new(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a topic hashes to.
    pub fn shard_for_topic(&self, topic: usize) -> usize {
        (split_mix64(topic as u64) % self.shards.len() as u64) as usize
    }

    /// The shard a cached id lives on, if present.
    pub fn shard_of(&self, id: ExampleId) -> Option<usize> {
        self.directory.get(&id).copied()
    }

    /// Read access to one shard.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn shard(&self, index: usize) -> &ExampleCache {
        &self.shards[index]
    }

    /// Per-shard example counts (engine/report diagnostics).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(ExampleCache::len).collect()
    }

    /// Per-shard retrieval-hit totals (sum of entry access counts) —
    /// the demand signal the budget rebalance folds in beside byte
    /// share, and the first input to the ROADMAP's shard-autoscaling
    /// item.
    pub fn shard_hits(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.access_counts().iter().sum())
            .collect()
    }

    /// Per-shard plaintext bytes.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(ExampleCache::total_bytes).collect()
    }

    /// Inserts an example at time `now`, routed by topic hash; replaces
    /// any entry with the same id. Returns false if it replaced one.
    pub fn insert(&mut self, example: Example, now: f64) -> bool {
        let id = example.id;
        let target = self.shard_for_topic(example.topic);
        // A replaced example whose topic changed must leave its old shard
        // (and still count as a replacement, not a fresh insert).
        let mut fresh = true;
        if let Some(old) = self.directory.get(&id).copied()
            && old != target
        {
            self.shards[old].remove(id);
            fresh = false;
        }
        self.directory.insert(id, target);
        self.shards[target].insert(example, now) && fresh
    }

    /// Removes an example, returning it.
    pub fn remove(&mut self, id: ExampleId) -> Option<Example> {
        let shard = self.directory.remove(&id)?;
        self.shards[shard].remove(id)
    }

    /// Looks up an entry.
    pub fn entry(&self, id: ExampleId) -> Option<&CachedExample> {
        self.shards[self.shard_of(id)?].entry(id)
    }

    /// Mutable entry access (used by the replay executor).
    pub fn entry_mut(&mut self, id: ExampleId) -> Option<&mut CachedExample> {
        let shard = self.shard_of(id)?;
        self.shards[shard].entry_mut(id)
    }

    /// Records a retrieval hit.
    pub fn record_access(&mut self, id: ExampleId) {
        if let Some(s) = self.shard_of(id) {
            self.shards[s].record_access(id);
        }
    }

    /// Records a successful offload enabled by this example.
    pub fn record_offload_gain(&mut self, id: ExampleId, now: f64, gain: f64) {
        if let Some(s) = self.shard_of(id) {
            self.shards[s].record_offload_gain(id, now, gain);
        }
    }

    /// Records usage feedback (folds into the replay-gain EMA).
    pub fn record_usage_feedback(&mut self, id: ExampleId, response_quality: f64, model_cost: f64) {
        if let Some(s) = self.shard_of(id) {
            self.shards[s].record_usage_feedback(id, response_quality, model_cost);
        }
    }

    /// Number of cached examples across all shards.
    pub fn len(&self) -> usize {
        self.directory.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.directory.is_empty()
    }

    /// Total plaintext bytes across all shards.
    pub fn total_bytes(&self) -> usize {
        self.shards.iter().map(ExampleCache::total_bytes).sum()
    }

    /// Iterates over entries, shard by shard.
    pub fn iter(&self) -> impl Iterator<Item = (&ExampleId, &CachedExample)> {
        self.shards.iter().flat_map(ExampleCache::iter)
    }

    /// All ids, sorted (deterministic order for planners).
    pub fn sorted_ids(&self) -> Vec<ExampleId> {
        let mut ids: Vec<ExampleId> = self.directory.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Access counts across all shards (Fig. 10 histogram source).
    pub fn access_counts(&self) -> Vec<u64> {
        self.shards
            .iter()
            .flat_map(ExampleCache::access_counts)
            .collect()
    }

    /// Divides `capacity` bytes across shards by retained-gain value at
    /// time `now` (see the module docs for the quantum-knapsack scheme).
    /// The returned budgets sum to at most `capacity`.
    pub fn plan_shard_budgets(&self, capacity: usize, now: f64) -> Vec<usize> {
        let n = self.shards.len();
        let quantum = (capacity / REBALANCE_QUANTA).max(1);

        // Cut each shard's density-sorted gain curve into quanta.
        struct Chunk {
            shard: usize,
            bytes: usize,
            units: usize,
            gain: f64,
        }
        let mut chunks: Vec<Chunk> = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let mut items: Vec<KnapsackItem> = items_from_cache(shard, now);
            items.sort_by(|a, b| {
                let da = a.value / a.weight.max(1) as f64;
                let db = b.value / b.weight.max(1) as f64;
                db.partial_cmp(&da)
                    .expect("finite densities")
                    .then(a.id.cmp(&b.id))
            });
            // Close each chunk *before* it would exceed the quantum, so a
            // normal chunk costs exactly 1 DP unit for ~1 quantum of
            // bytes; only a single oversized item can make a multi-unit
            // chunk. (Closing on overshoot instead would charge 2 units
            // per ~1 quantum and let the DP place only half the capacity
            // gain-aware.)
            let (mut bytes, mut gain) = (0usize, 0.0f64);
            for item in &items {
                if bytes > 0 && bytes + item.weight > quantum {
                    chunks.push(Chunk {
                        shard: s,
                        bytes,
                        units: bytes.div_ceil(quantum),
                        gain,
                    });
                    bytes = 0;
                    gain = 0.0;
                }
                bytes += item.weight;
                gain += item.value;
            }
            if bytes > 0 {
                chunks.push(Chunk {
                    shard: s,
                    bytes,
                    units: bytes.div_ceil(quantum),
                    gain,
                });
            }
        }

        // 0/1 knapsack over quanta (weights in quantum units so the exact
        // DP stays O(chunks * REBALANCE_QUANTA)). Chunk ids encode the
        // chunk index; density ordering makes selections per-shard
        // prefixes in value terms.
        let dp_items: Vec<KnapsackItem> = chunks
            .iter()
            .enumerate()
            .map(|(i, c)| KnapsackItem {
                id: ExampleId(i as u64),
                weight: c.units,
                value: c.gain,
            })
            .collect();
        let kept = dp_knapsack(&dp_items, capacity / quantum);
        let mut budgets = vec![0usize; n];
        for id in &kept {
            let c = &chunks[id.0 as usize];
            budgets[c.shard] += c.bytes;
        }

        // Give unclaimed capacity back proportionally to unmet
        // occupancy *weighted by retrieval demand*: a shard's unmet
        // bytes count `1 + HIT_WEIGHT * hit_share` times, so byte share
        // alone no longer decides where the slack goes — hot shards
        // (many selection hits) keep more of their gain-less content
        // than cold ones. With no recorded hits the weights collapse to
        // plain unmet bytes, the original policy. Integer arithmetic
        // throughout keeps the split deterministic.
        let spent: usize = budgets.iter().sum();
        let mut leftover = capacity.saturating_sub(spent);
        let unmet: Vec<usize> = self
            .shards
            .iter()
            .zip(&budgets)
            .map(|(shard, &b)| shard.total_bytes().saturating_sub(b))
            .collect();
        let unmet_total: usize = unmet.iter().sum();
        if unmet_total > 0 {
            /// How strongly hit share skews the leftover split: a shard
            /// holding every hit weighs `1 + HIT_WEIGHT` times its
            /// bytes.
            const HIT_WEIGHT: u128 = 3;
            let hits = self.shard_hits();
            let hits_total: u128 = hits.iter().map(|&h| u128::from(h)).sum();
            let weight = |u: usize, h: u64| -> u128 {
                let base = u as u128 * hits_total.max(1);
                base + u as u128 * HIT_WEIGHT * u128::from(h)
            };
            let weights: Vec<u128> = unmet
                .iter()
                .zip(&hits)
                .map(|(&u, &h)| weight(u, h))
                .collect();
            let weight_total: u128 = weights.iter().sum();
            let grants: Vec<usize> = weights
                .iter()
                .map(|&w| ((w * leftover as u128) / weight_total.max(1)) as usize)
                .collect();
            for (b, g) in budgets.iter_mut().zip(&grants) {
                *b += g;
            }
            leftover -= grants.iter().sum::<usize>();
            // Hand the integer-division residue to shards in index order.
            for (b, &u) in budgets.iter_mut().zip(&unmet) {
                if leftover == 0 {
                    break;
                }
                let grant = leftover.min(u);
                *b += grant;
                leftover -= grant;
            }
        }
        budgets
    }

    /// Cross-shard budget rebalance + per-shard knapsack eviction so the
    /// cache fits in `capacity` bytes. Returns evicted ids (callers must
    /// unindex them from the selector).
    pub fn rebalance(&mut self, capacity: usize, now: f64) -> Vec<ExampleId> {
        if self.total_bytes() <= capacity {
            return Vec::new();
        }
        let budgets = self.plan_shard_budgets(capacity, now);
        let mut evicted = Vec::new();
        for (s, budget) in budgets.iter().enumerate() {
            for id in plan_eviction(&self.shards[s], *budget, now) {
                self.shards[s].remove(id);
                self.directory.remove(&id);
                evicted.push(id);
            }
        }
        evicted
    }
}

impl ExampleStore for ShardedExampleCache {
    fn get_example(&self, id: ExampleId) -> Option<&Example> {
        self.shards[self.shard_of(id)?].get_example(id)
    }

    fn example_count(&self) -> usize {
        self.directory.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelId, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn sample_examples(n: usize) -> Vec<Example> {
        WorkloadGenerator::new(Dataset::MsMarco, 43).generate_examples(
            n,
            &ModelSpec::gemma_2_27b(),
            ModelId(0),
            &Generator::new(),
        )
    }

    fn filled(n_shards: usize, n_examples: usize) -> (ShardedExampleCache, Vec<Example>) {
        let mut cache = ShardedExampleCache::new(n_shards);
        let examples = sample_examples(n_examples);
        for e in &examples {
            cache.insert(e.clone(), 0.0);
        }
        (cache, examples)
    }

    #[test]
    fn same_topic_lands_on_same_shard() {
        let (cache, examples) = filled(4, 300);
        for e in &examples {
            assert_eq!(cache.shard_of(e.id), Some(cache.shard_for_topic(e.topic)));
        }
        // Two examples sharing a topic must share a shard.
        for w in examples.windows(2) {
            if w[0].topic == w[1].topic {
                assert_eq!(cache.shard_of(w[0].id), cache.shard_of(w[1].id));
            }
        }
    }

    #[test]
    fn shards_share_the_load() {
        let (cache, _) = filled(4, 800);
        let sizes = cache.shard_sizes();
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes.iter().sum::<usize>(), 800);
        // Topic-hash sharding over a Zipf topic law is uneven but no shard
        // may be starved or hold everything.
        for &s in &sizes {
            assert!(s > 0, "starved shard: {sizes:?}");
            assert!(s < 800, "degenerate sharding: {sizes:?}");
        }
    }

    #[test]
    fn roundtrip_and_byte_accounting_match_unsharded() {
        let (mut sharded, examples) = filled(3, 60);
        let mut flat = ExampleCache::new();
        for e in &examples {
            flat.insert(e.clone(), 0.0);
        }
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.total_bytes(), flat.total_bytes());
        assert_eq!(sharded.sorted_ids(), flat.sorted_ids());
        let victim = examples[7].id;
        assert_eq!(sharded.remove(victim).unwrap().id, victim);
        assert!(sharded.get_example(victim).is_none());
        assert_eq!(sharded.len(), flat.len() - 1);
    }

    #[test]
    fn feedback_routes_to_the_owning_shard() {
        let (mut cache, examples) = filled(4, 40);
        let id = examples[0].id;
        cache.record_access(id);
        cache.record_access(id);
        cache.record_offload_gain(id, 0.0, 2.5);
        cache.record_usage_feedback(id, 0.2, 1.0);
        let entry = cache.entry(id).unwrap();
        assert_eq!(entry.accesses, 2);
        assert!((entry.offload_gain.value_at(0.0) - 2.5).abs() < 1e-9);
        assert!((entry.replay_gain.value() - 0.8).abs() < 1e-9);
        // Unknown ids are no-ops.
        cache.record_access(ExampleId(u64::MAX));
        cache.record_offload_gain(ExampleId(u64::MAX), 0.0, 1.0);
    }

    #[test]
    fn rebalance_respects_global_capacity() {
        let (mut cache, examples) = filled(4, 200);
        for (i, e) in examples.iter().enumerate() {
            if i % 3 == 0 {
                cache.record_offload_gain(e.id, 0.0, 4.0);
            }
        }
        let cap = cache.total_bytes() / 2;
        let evicted = cache.rebalance(cap, 0.0);
        assert!(!evicted.is_empty());
        assert!(
            cache.total_bytes() <= cap,
            "{} > {cap}",
            cache.total_bytes()
        );
        // Directory and shards stay consistent.
        for id in &evicted {
            assert!(cache.shard_of(*id).is_none());
            assert!(cache.get_example(*id).is_none());
        }
        assert_eq!(cache.len(), 200 - evicted.len());
    }

    #[test]
    fn budgets_follow_the_gains() {
        let (mut cache, examples) = filled(2, 400);
        // All gains live on one shard's topics.
        let hot = cache.shard_of(examples[0].id).unwrap();
        for e in &examples {
            if cache.shard_of(e.id) == Some(hot) {
                cache.record_offload_gain(e.id, 0.0, 10.0);
            }
        }
        let cap = cache.total_bytes() / 3;
        let budgets = cache.plan_shard_budgets(cap, 0.0);
        assert!(
            budgets[hot] > budgets[1 - hot],
            "gain-bearing shard should win the budget: {budgets:?}"
        );
        let evicted = cache.rebalance(cap, 0.0);
        // The cold shard must shoulder disproportionate eviction.
        let cold_evicted = evicted
            .iter()
            .filter(|id| {
                examples
                    .iter()
                    .find(|e| e.id == **id)
                    .map(|e| cache.shard_for_topic(e.topic) != hot)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            cold_evicted * 2 > evicted.len(),
            "cold shard should dominate eviction: {cold_evicted}/{}",
            evicted.len()
        );
    }

    #[test]
    fn shard_hits_sum_per_shard() {
        let (mut cache, examples) = filled(4, 60);
        assert_eq!(cache.shard_hits(), vec![0, 0, 0, 0]);
        cache.record_access(examples[0].id);
        cache.record_access(examples[0].id);
        cache.record_access(examples[1].id);
        let hits = cache.shard_hits();
        assert_eq!(hits.iter().sum::<u64>(), 3);
        let s0 = cache.shard_of(examples[0].id).unwrap();
        assert!(hits[s0] >= 2);
    }

    #[test]
    fn leftover_budget_follows_hit_counts_not_bytes_alone() {
        // No offload gains anywhere: the whole budget flows through the
        // leftover path. Concentrating retrieval hits on one shard must
        // tilt its budget above the plain byte-share split.
        let (mut cold, examples) = filled(2, 400);
        let (mut hot, _) = filled(2, 400);
        let target = hot.shard_of(examples[0].id).unwrap();
        for e in &examples {
            if hot.shard_of(e.id) == Some(target) {
                for _ in 0..5 {
                    hot.record_access(e.id);
                }
            }
        }
        let cap = cold.total_bytes() / 2;
        let base = cold.plan_shard_budgets(cap, 0.0);
        let tilted = hot.plan_shard_budgets(cap, 0.0);
        assert!(
            tilted[target] > base[target],
            "hits must attract budget: {base:?} vs {tilted:?}"
        );
        assert!(tilted.iter().sum::<usize>() <= cap);
        // And the tilt shows up in eviction: the hit-bearing shard
        // loses fewer examples than under the byte-only split.
        let evicted_hot_shard = hot
            .rebalance(cap, 0.0)
            .iter()
            .filter(|id| {
                examples
                    .iter()
                    .find(|e| e.id == **id)
                    .map(|e| hot.shard_for_topic(e.topic) == target)
                    .unwrap_or(false)
            })
            .count();
        let evicted_cold_shard = cold
            .rebalance(cap, 0.0)
            .iter()
            .filter(|id| {
                examples
                    .iter()
                    .find(|e| e.id == **id)
                    .map(|e| cold.shard_for_topic(e.topic) == target)
                    .unwrap_or(false)
            })
            .count();
        assert!(
            evicted_hot_shard <= evicted_cold_shard,
            "hits should shield the hot shard: {evicted_hot_shard} vs {evicted_cold_shard}"
        );
    }

    #[test]
    fn under_capacity_rebalance_is_a_noop() {
        let (mut cache, _) = filled(4, 50);
        let before = cache.len();
        assert!(cache.rebalance(cache.total_bytes() + 1, 0.0).is_empty());
        assert_eq!(cache.len(), before);
    }

    #[test]
    fn single_shard_matches_flat_eviction_semantics() {
        let (mut cache, examples) = filled(1, 80);
        for (i, e) in examples.iter().enumerate() {
            if i % 2 == 0 {
                cache.record_offload_gain(e.id, 0.0, 5.0);
            }
        }
        let cap = cache.total_bytes() / 2;
        cache.rebalance(cap, 0.0);
        assert!(cache.total_bytes() <= cap);
        let kept_valuable = examples
            .iter()
            .enumerate()
            .filter(|(i, e)| i % 2 == 0 && cache.get_example(e.id).is_some())
            .count();
        let kept_worthless = examples
            .iter()
            .enumerate()
            .filter(|(i, e)| i % 2 == 1 && cache.get_example(e.id).is_some())
            .count();
        assert!(kept_valuable > kept_worthless);
    }

    #[test]
    fn gain_aware_budgets_cover_most_of_the_capacity() {
        // When every example carries gain, the knapsack should hand out
        // nearly the whole budget by value — not fall back to the
        // occupancy-proportional leftover path for half of it.
        let (mut cache, examples) = filled(4, 300);
        for e in &examples {
            cache.record_offload_gain(e.id, 0.0, 1.0);
        }
        let cap = cache.total_bytes() / 2;
        let budgets = cache.plan_shard_budgets(cap, 0.0);
        let gain_allocated: usize = budgets.iter().sum();
        assert!(gain_allocated <= cap);
        assert!(
            gain_allocated as f64 > cap as f64 * 0.9,
            "DP should claim most of the budget: {gain_allocated}/{cap}"
        );
    }

    #[test]
    fn reinsert_with_changed_topic_reports_replacement() {
        let (mut cache, examples) = filled(4, 40);
        let mut moved = examples[0].clone();
        // Find a topic that hashes to a different shard.
        let home = cache.shard_for_topic(moved.topic);
        moved.topic = (0..)
            .find(|&t| cache.shard_for_topic(t) != home)
            .expect("multiple shards exist");
        assert!(
            !cache.insert(moved.clone(), 1.0),
            "replacement must report false"
        );
        assert_eq!(cache.len(), 40, "no duplicate entry across shards");
        assert_eq!(
            cache.shard_of(moved.id),
            Some(cache.shard_for_topic(moved.topic))
        );
    }

    #[test]
    fn budget_planning_is_deterministic() {
        let (mut a, _) = filled(4, 150);
        let (mut b, _) = filled(4, 150);
        let cap = a.total_bytes() / 2;
        assert_eq!(
            a.plan_shard_budgets(cap, 0.0),
            b.plan_shard_budgets(cap, 0.0)
        );
        assert_eq!(a.rebalance(cap, 0.0), b.rebalance(cap, 0.0));
    }
}
