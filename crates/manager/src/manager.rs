//! The [`ExampleManager`] facade: admission, feedback, replay, eviction.

use ic_llmsim::{Example, ExampleId, Generator, ModelSpec};
use rand::Rng;

use crate::admission::{Admission, AdmissionPolicy};
use crate::replay::{ReplayConfig, plan_replay, replay_example};
use crate::shard::{DEFAULT_SHARDS, ShardedExampleCache};

/// Manager configuration.
#[derive(Debug, Clone)]
pub struct ManagerConfig {
    /// Byte cap on the plaintext cache; `None` = unbounded (§4.3 notes
    /// plaintext footprints are small, so many deployments can skip caps).
    pub capacity_bytes: Option<usize>,
    /// Number of topic-hash cache shards (at least 1; see
    /// [`crate::shard`]).
    pub shards: usize,
    /// Admission policy.
    pub admission: AdmissionPolicy,
    /// Replay policy.
    pub replay: ReplayConfig,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: None,
            shards: DEFAULT_SHARDS,
            admission: AdmissionPolicy::default(),
            replay: ReplayConfig::default(),
        }
    }
}

/// Result of one offline replay round.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    /// Examples replayed.
    pub replayed: usize,
    /// Total latent quality improvement across replayed examples.
    pub total_improvement: f64,
}

/// The Example Manager service.
///
/// # Examples
///
/// ```
/// use ic_llmsim::{ExampleStore, Generator, ModelId, ModelSpec};
/// use ic_manager::{ExampleManager, ManagerConfig};
/// use ic_workloads::{Dataset, WorkloadGenerator};
///
/// let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 8);
/// let examples = wg.generate_examples(
///     10,
///     &ModelSpec::gemma_2_27b(),
///     ModelId(0),
///     &Generator::new(),
/// );
/// let mut manager = ExampleManager::new(ManagerConfig::default());
/// for e in examples {
///     manager.admit(e, 0.0);
/// }
/// assert_eq!(manager.cache().example_count(), 10);
/// ```
#[derive(Debug)]
pub struct ExampleManager {
    cache: ShardedExampleCache,
    config: ManagerConfig,
    admitted: u64,
    rejected: u64,
}

impl ExampleManager {
    /// Creates a manager.
    pub fn new(config: ManagerConfig) -> Self {
        Self {
            cache: ShardedExampleCache::new(config.shards),
            config,
            admitted: 0,
            rejected: 0,
        }
    }

    /// The underlying sharded cache (read access; also the
    /// [`ExampleStore`] the selector resolves against).
    ///
    /// [`ExampleStore`]: ic_llmsim::ExampleStore
    pub fn cache(&self) -> &ShardedExampleCache {
        &self.cache
    }

    /// Mutable cache access for feedback recording.
    pub fn cache_mut(&mut self) -> &mut ShardedExampleCache {
        &mut self.cache
    }

    /// The configuration.
    pub fn config(&self) -> &ManagerConfig {
        &self.config
    }

    /// Runs admission control and caches the example if admitted.
    /// Returns the admitted example's id (callers index it in the
    /// selector) or `None` when rejected.
    pub fn admit(&mut self, example: Example, now: f64) -> Option<ExampleId> {
        match self.config.admission.evaluate(example) {
            Admission::Admit(clean) => {
                let id = clean.id;
                self.cache.insert(*clean, now);
                self.admitted += 1;
                Some(id)
            }
            Admission::Reject(_) => {
                self.rejected += 1;
                None
            }
        }
    }

    /// `(admitted, rejected)` counters.
    pub fn admission_stats(&self) -> (u64, u64) {
        (self.admitted, self.rejected)
    }

    /// Adjusts the byte cap at runtime (an operations knob; takes effect
    /// at the next capacity enforcement).
    pub fn set_capacity_bytes(&mut self, bytes: Option<usize>) {
        self.config.capacity_bytes = bytes;
    }

    /// Plans and executes one off-peak replay round on the source model.
    ///
    /// Planning runs per shard (each plan is O(shard size)), then the
    /// per-shard plans merge by replay gain so the global off-peak budget
    /// (`replay.batch_limit`) still goes to the highest-G(e) examples.
    pub fn run_replay(
        &mut self,
        source_spec: &ModelSpec,
        generator: &Generator,
        rng: &mut impl Rng,
    ) -> ReplayReport {
        let mut ranked: Vec<(ExampleId, f64)> = Vec::new();
        for s in 0..self.cache.num_shards() {
            let shard = self.cache.shard(s);
            for id in plan_replay(shard, &self.config.replay) {
                let gain = shard.entry(id).map_or(0.0, |e| e.replay_gain.value());
                ranked.push((id, gain));
            }
        }
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite gains")
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(self.config.replay.batch_limit);
        let plan: Vec<ExampleId> = ranked.into_iter().map(|(id, _)| id).collect();
        let mut report = ReplayReport::default();
        for id in plan {
            if let Some(entry) = self.cache.entry_mut(id) {
                let improvement = replay_example(
                    &mut entry.example,
                    source_spec,
                    generator,
                    self.config.replay.rounds,
                    rng,
                );
                report.replayed += 1;
                report.total_improvement += improvement;
                // A refined response resets the perceived replay gain:
                // fresh feedback must re-justify another replay.
                entry.replay_gain = ic_stats::Ema::new(0.2);
            }
        }
        report
    }

    /// Enforces the byte capacity: cross-shard budget rebalance followed
    /// by per-shard knapsack eviction. Returns evicted ids (callers must
    /// unindex them from the selector).
    pub fn enforce_capacity(&mut self, now: f64) -> Vec<ExampleId> {
        let Some(cap) = self.config.capacity_bytes else {
            return Vec::new();
        };
        self.cache.rebalance(cap, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{ExampleStore, ModelId};
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn manager_with(n: usize, config: ManagerConfig) -> (ExampleManager, Vec<ExampleId>) {
        let mut wg = WorkloadGenerator::new(Dataset::NaturalQuestions, 81);
        let exs = wg.generate_examples(n, &ModelSpec::gemma_2_27b(), ModelId(0), &Generator::new());
        let mut m = ExampleManager::new(config);
        let ids = exs.into_iter().filter_map(|e| m.admit(e, 0.0)).collect();
        (m, ids)
    }

    #[test]
    fn admission_flows_into_cache() {
        let (m, ids) = manager_with(25, ManagerConfig::default());
        assert_eq!(m.cache().example_count(), ids.len());
        assert_eq!(m.admission_stats().0, ids.len() as u64);
    }

    #[test]
    fn replay_round_improves_flagged_examples() {
        let (mut m, ids) = manager_with(30, ManagerConfig::default());
        // Flag a third of the pool as high-gain.
        for id in ids.iter().take(10) {
            m.cache_mut().record_usage_feedback(*id, 0.2, 1.0);
        }
        let before: f64 = ids
            .iter()
            .take(10)
            .map(|id| m.cache().entry(*id).unwrap().example.quality)
            .sum();
        let mut rng = rng_from_seed(82);
        let report = m.run_replay(&ModelSpec::gemma_2_27b(), &Generator::new(), &mut rng);
        assert_eq!(report.replayed, 10);
        let after: f64 = ids
            .iter()
            .take(10)
            .map(|id| m.cache().entry(*id).unwrap().example.quality)
            .sum();
        assert!(after >= before);
        assert!((after - before - report.total_improvement).abs() < 1e-9);
    }

    #[test]
    fn replay_resets_gain_so_examples_rotate() {
        let (mut m, ids) = manager_with(5, ManagerConfig::default());
        m.cache_mut().record_usage_feedback(ids[0], 0.1, 1.0);
        let mut rng = rng_from_seed(83);
        let first = m.run_replay(&ModelSpec::gemma_2_27b(), &Generator::new(), &mut rng);
        assert_eq!(first.replayed, 1);
        // Immediately after, the same example should not be re-planned.
        let second = m.run_replay(&ModelSpec::gemma_2_27b(), &Generator::new(), &mut rng);
        assert_eq!(second.replayed, 0);
    }

    #[test]
    fn capacity_enforcement_keeps_high_gain_examples() {
        let (mut m, ids) = manager_with(40, ManagerConfig::default());
        // Half the examples earn offload gains.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                m.cache_mut().record_offload_gain(*id, 0.0, 5.0);
            }
        }
        let total = m.cache().total_bytes();
        m.config.capacity_bytes = Some(total / 2);
        let evicted = m.enforce_capacity(0.0);
        assert!(!evicted.is_empty());
        assert!(m.cache().total_bytes() <= total / 2);
        // Valuable (even-index) examples should be preferentially kept.
        let kept_valuable = ids
            .iter()
            .enumerate()
            .filter(|(i, id)| i % 2 == 0 && m.cache().get_example(**id).is_some())
            .count();
        let kept_worthless = ids
            .iter()
            .enumerate()
            .filter(|(i, id)| i % 2 == 1 && m.cache().get_example(**id).is_some())
            .count();
        assert!(
            kept_valuable > kept_worthless,
            "eviction should keep gain-earning examples: {kept_valuable} vs {kept_worthless}"
        );
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let (mut m, _) = manager_with(10, ManagerConfig::default());
        assert!(m.enforce_capacity(0.0).is_empty());
        assert_eq!(m.cache().example_count(), 10);
    }
}
