//! Cost-aware example replay (§4.3).
//!
//! Generation is stochastic, so re-querying the same request and keeping
//! the best response refines an example ("this variance can be harnessed
//! through example replay"). Replaying everything is wasteful: the
//! planner ranks examples by their accumulated potential gain `G(e)` and
//! stops at the point where the expected saving no longer covers the
//! generation cost. Examples that have already been replayed five times
//! are skipped (§5's outlier filter).

use ic_llmsim::{Example, GenSetup, Generator, ModelSpec, Request, RequestId};
use rand::Rng;

use crate::cache::ExampleCache;
use ic_llmsim::ExampleId;

/// Replay configuration.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Best-of-n rounds per replayed example.
    pub rounds: u32,
    /// Maximum lifetime replay iterations per example (§5 uses 5).
    pub max_replays: u32,
    /// One-time replay cost in `G(e)` units: the cut-off — examples whose
    /// potential gain falls below this are not replayed.
    pub replay_cost: f64,
    /// Maximum examples replayed per planning round (off-peak budget).
    pub batch_limit: usize,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        Self {
            rounds: 4,
            max_replays: 5,
            replay_cost: 0.15,
            batch_limit: 64,
        }
    }
}

/// Ranks cache entries by replay potential and applies the cut-off.
///
/// Returns ids in descending `G(e)` order.
pub fn plan_replay(cache: &ExampleCache, config: &ReplayConfig) -> Vec<ExampleId> {
    let mut ranked: Vec<(ExampleId, f64)> = cache
        .iter()
        .filter(|(_, e)| e.example.replay_count < config.max_replays)
        .map(|(&id, e)| (id, e.replay_gain.value()))
        .filter(|&(_, g)| g >= config.replay_cost)
        .collect();
    ranked.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("finite gains")
            .then(a.0.cmp(&b.0))
    });
    ranked.truncate(config.batch_limit);
    ranked.into_iter().map(|(id, _)| id).collect()
}

/// Reconstructs the historical request an example was answering.
fn reconstruct_request(example: &Example) -> Request {
    Request {
        id: RequestId(u64::MAX),
        topic: example.topic,
        latent: example.latent.clone(),
        embedding: example.embedding.clone(),
        difficulty: example.origin_difficulty,
        complexity_signal: example.origin_difficulty,
        skills: example.skills,
        task: example.task,
        input_tokens: example.request_tokens,
        target_output_tokens: example.response_tokens.max(8),
        text: example.request_text.clone(),
        sensitive: false,
    }
}

/// Replays one example best-of-n on its source model, keeping the best
/// response. Returns the quality improvement (0.0 if no round beat the
/// stored response).
pub fn replay_example(
    example: &mut Example,
    source_spec: &ModelSpec,
    generator: &Generator,
    rounds: u32,
    rng: &mut impl Rng,
) -> f64 {
    let request = reconstruct_request(example);
    let mut best = example.quality;
    let mut best_tokens = example.response_tokens;
    for _ in 0..rounds.max(1) {
        let out = generator.generate(source_spec, &request, &GenSetup::bare(), rng);
        if out.quality > best {
            best = out.quality;
            best_tokens = out.output_tokens;
        }
    }
    let improvement = best - example.quality;
    example.quality = best;
    example.response_tokens = best_tokens;
    example.replay_count += 1;
    improvement
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{ModelId, ModelSpec};
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn cache_with(n: usize) -> (ExampleCache, Vec<ExampleId>) {
        let mut wg = WorkloadGenerator::new(Dataset::OpenOrca, 51);
        let exs = wg.generate_examples(n, &ModelSpec::gemma_2_27b(), ModelId(0), &Generator::new());
        let ids: Vec<ExampleId> = exs.iter().map(|e| e.id).collect();
        let mut cache = ExampleCache::new();
        for e in exs {
            cache.insert(e, 0.0);
        }
        (cache, ids)
    }

    #[test]
    fn replay_never_degrades_quality() {
        let (mut cache, ids) = cache_with(20);
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_27b();
        let mut rng = rng_from_seed(52);
        for id in &ids {
            let entry = cache.entry_mut(*id).unwrap();
            let before = entry.example.quality;
            let gain = replay_example(&mut entry.example, &spec, &generator, 4, &mut rng);
            assert!(gain >= 0.0);
            assert!(entry.example.quality >= before);
            assert_eq!(entry.example.replay_count, 1);
        }
    }

    #[test]
    fn best_of_n_improves_on_average_fig11() {
        let (mut cache, ids) = cache_with(60);
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_27b();
        let mut rng = rng_from_seed(53);
        let mut total_gain = 0.0;
        for id in &ids {
            let entry = cache.entry_mut(*id).unwrap();
            total_gain += replay_example(&mut entry.example, &spec, &generator, 5, &mut rng);
        }
        let mean_gain = total_gain / ids.len() as f64;
        assert!(
            mean_gain > 0.02,
            "best-of-5 should lift average quality: {mean_gain}"
        );
    }

    #[test]
    fn more_rounds_help_more() {
        let generator = Generator::new();
        let spec = ModelSpec::gemma_2_27b();
        let run = |rounds: u32, seed: u64| -> f64 {
            let (mut cache, ids) = cache_with(50);
            let mut rng = rng_from_seed(seed);
            ids.iter()
                .map(|id| {
                    let e = cache.entry_mut(*id).unwrap();
                    replay_example(&mut e.example, &spec, &generator, rounds, &mut rng)
                })
                .sum::<f64>()
                / ids.len() as f64
        };
        let one = run(1, 54);
        let eight = run(8, 54);
        assert!(eight > one, "more rounds must help: {one} vs {eight}");
    }

    #[test]
    fn planner_ranks_by_gain_and_cuts_off() {
        let (mut cache, ids) = cache_with(10);
        // Give three examples distinct G(e) profiles.
        cache.record_usage_feedback(ids[0], 0.1, 1.0); // G = 0.9: replay.
        cache.record_usage_feedback(ids[1], 0.5, 0.8); // G = 0.4: replay.
        cache.record_usage_feedback(ids[2], 0.95, 0.2); // G = 0.01: skip.
        let plan = plan_replay(
            &cache,
            &ReplayConfig {
                replay_cost: 0.15,
                ..ReplayConfig::default()
            },
        );
        assert_eq!(plan, vec![ids[0], ids[1]]);
    }

    #[test]
    fn planner_respects_max_replays() {
        let (mut cache, ids) = cache_with(3);
        cache.record_usage_feedback(ids[0], 0.1, 1.0);
        cache.entry_mut(ids[0]).unwrap().example.replay_count = 5;
        let plan = plan_replay(&cache, &ReplayConfig::default());
        assert!(
            !plan.contains(&ids[0]),
            "over-replayed example must be skipped"
        );
    }

    #[test]
    fn planner_respects_batch_limit() {
        let (mut cache, ids) = cache_with(30);
        for id in &ids {
            cache.record_usage_feedback(*id, 0.2, 0.9);
        }
        let plan = plan_replay(
            &cache,
            &ReplayConfig {
                batch_limit: 7,
                ..ReplayConfig::default()
            },
        );
        assert_eq!(plan.len(), 7);
    }

    #[test]
    fn fresh_cache_plans_nothing() {
        let (cache, _) = cache_with(10);
        // No feedback yet: all G(e) are 0 < cut-off.
        assert!(plan_replay(&cache, &ReplayConfig::default()).is_empty());
    }
}
