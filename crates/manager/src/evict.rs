//! Knapsack cache eviction (§4.3).
//!
//! "The decision process mirrors a classic knapsack problem: each example
//! is treated as an item with a weight (its cache size, such as plaintext
//! length) and a value (the achievable efficiency gain). ... This
//! one-dimensional knapsack problem can be solved efficiently."
//!
//! The production path is a greedy value-density solver (near-optimal for
//! knapsacks whose item weights are small relative to capacity, which
//! plaintext examples always are). An exact dynamic-programming solver is
//! provided for validation and small instances; a property test in this
//! module pins the greedy solution to within a provable bound of optimal.

use ic_llmsim::ExampleId;

use crate::cache::ExampleCache;

/// One knapsack item: an example's id, byte weight, and retention value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnapsackItem {
    /// The example.
    pub id: ExampleId,
    /// Plaintext size in bytes.
    pub weight: usize,
    /// Decayed offload gain (non-negative).
    pub value: f64,
}

/// Greedy density knapsack: keeps items in descending value/weight order
/// while they fit. Returns the ids to KEEP.
pub fn greedy_knapsack(items: &[KnapsackItem], capacity: usize) -> Vec<ExampleId> {
    let mut sorted: Vec<&KnapsackItem> = items.iter().filter(|i| i.weight > 0).collect();
    sorted.sort_by(|a, b| {
        let da = a.value / a.weight as f64;
        let db = b.value / b.weight as f64;
        db.partial_cmp(&da)
            .expect("finite densities")
            .then(a.id.cmp(&b.id))
    });
    let mut kept = Vec::new();
    let mut used = 0usize;
    for item in sorted {
        if used + item.weight <= capacity {
            used += item.weight;
            kept.push(item.id);
        }
    }
    // Zero-weight items always fit.
    kept.extend(items.iter().filter(|i| i.weight == 0).map(|i| i.id));
    kept
}

/// Exact 0/1 knapsack via dynamic programming over byte capacity.
/// Intended for validation and small instances — O(n * capacity).
/// Returns the ids to KEEP.
pub fn dp_knapsack(items: &[KnapsackItem], capacity: usize) -> Vec<ExampleId> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // dp[w] = best value using capacity w; keep[i][w] = item i taken at w.
    let mut dp = vec![0.0f64; capacity + 1];
    let mut take = vec![vec![false; capacity + 1]; n];
    for (i, item) in items.iter().enumerate() {
        if item.weight > capacity {
            continue;
        }
        for w in (item.weight..=capacity).rev() {
            let candidate = dp[w - item.weight] + item.value.max(0.0);
            if candidate > dp[w] {
                dp[w] = candidate;
                take[i][w] = true;
            }
        }
    }
    // Trace back.
    let mut kept = Vec::new();
    let mut w = capacity;
    for i in (0..n).rev() {
        if take[i][w] {
            kept.push(items[i].id);
            w -= items[i].weight;
        }
    }
    kept.reverse();
    kept
}

/// Total value of a keep set.
pub fn total_value(items: &[KnapsackItem], kept: &[ExampleId]) -> f64 {
    items
        .iter()
        .filter(|i| kept.contains(&i.id))
        .map(|i| i.value)
        .sum()
}

/// Builds knapsack items from the cache at time `now` (values are the
/// decayed offload gains).
pub fn items_from_cache(cache: &ExampleCache, now: f64) -> Vec<KnapsackItem> {
    let mut items: Vec<KnapsackItem> = cache
        .iter()
        .map(|(&id, e)| KnapsackItem {
            id,
            weight: e.example.byte_len(),
            value: e.offload_gain.value_at(now),
        })
        .collect();
    items.sort_by_key(|i| i.id);
    items
}

/// Plans an eviction: returns the ids to EVICT so the cache fits in
/// `capacity_bytes`, maximizing retained gain (greedy solver).
pub fn plan_eviction(cache: &ExampleCache, capacity_bytes: usize, now: f64) -> Vec<ExampleId> {
    if cache.total_bytes() <= capacity_bytes {
        return Vec::new();
    }
    let items = items_from_cache(cache, now);
    let keep = greedy_knapsack(&items, capacity_bytes);
    items
        .iter()
        .map(|i| i.id)
        .filter(|id| !keep.contains(id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn item(id: u64, weight: usize, value: f64) -> KnapsackItem {
        KnapsackItem {
            id: ExampleId(id),
            weight,
            value,
        }
    }

    #[test]
    fn dp_finds_classic_optimum() {
        // Capacity 10: best is {B, C} (value 11), not the dense A alone.
        let items = [item(1, 9, 10.0), item(2, 5, 6.0), item(3, 5, 5.0)];
        let kept = dp_knapsack(&items, 10);
        assert_eq!(kept, vec![ExampleId(2), ExampleId(3)]);
        assert!((total_value(&items, &kept) - 11.0).abs() < 1e-9);
    }

    #[test]
    fn greedy_respects_capacity() {
        let items = [item(1, 4, 4.0), item(2, 4, 3.0), item(3, 4, 2.0)];
        let kept = greedy_knapsack(&items, 8);
        let used: usize = items
            .iter()
            .filter(|i| kept.contains(&i.id))
            .map(|i| i.weight)
            .sum();
        assert!(used <= 8);
        assert_eq!(kept.len(), 2);
        assert!(kept.contains(&ExampleId(1)));
        assert!(kept.contains(&ExampleId(2)));
    }

    #[test]
    fn zero_weight_items_always_kept() {
        let items = [item(1, 0, 0.1), item(2, 100, 5.0)];
        let kept = greedy_knapsack(&items, 10);
        assert!(kept.contains(&ExampleId(1)));
        assert!(!kept.contains(&ExampleId(2)));
    }

    #[test]
    fn oversized_item_is_skipped_not_fatal() {
        let items = [item(1, 1000, 100.0), item(2, 5, 1.0)];
        assert_eq!(dp_knapsack(&items, 10), vec![ExampleId(2)]);
        assert_eq!(greedy_knapsack(&items, 10), vec![ExampleId(2)]);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert!(dp_knapsack(&[], 10).is_empty());
        assert!(greedy_knapsack(&[], 10).is_empty());
        let items = [item(1, 5, 1.0)];
        assert!(dp_knapsack(&items, 0).is_empty());
    }

    proptest! {
        #[test]
        fn dp_matches_brute_force(
            weights in proptest::collection::vec(1usize..12, 1..8),
            values in proptest::collection::vec(0.0f64..10.0, 8),
            capacity in 1usize..40,
        ) {
            let items: Vec<KnapsackItem> = weights
                .iter()
                .zip(&values)
                .enumerate()
                .map(|(i, (&w, &v))| item(i as u64, w, v))
                .collect();
            // Brute force over all subsets.
            let n = items.len();
            let mut best = 0.0f64;
            for mask in 0u32..(1 << n) {
                let mut w = 0usize;
                let mut v = 0.0;
                for (i, it) in items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        w += it.weight;
                        v += it.value;
                    }
                }
                if w <= capacity && v > best {
                    best = v;
                }
            }
            let kept = dp_knapsack(&items, capacity);
            let used: usize = items.iter().filter(|i| kept.contains(&i.id)).map(|i| i.weight).sum();
            prop_assert!(used <= capacity);
            let dp_value = total_value(&items, &kept);
            prop_assert!((dp_value - best).abs() < 1e-9, "dp {dp_value} vs brute {best}");
        }

        #[test]
        fn greedy_is_within_bound_of_optimal(
            weights in proptest::collection::vec(1usize..10, 1..8),
            values in proptest::collection::vec(0.1f64..10.0, 8),
            capacity in 10usize..60,
        ) {
            let items: Vec<KnapsackItem> = weights
                .iter()
                .zip(&values)
                .enumerate()
                .map(|(i, (&w, &v))| item(i as u64, w, v))
                .collect();
            let optimal = total_value(&items, &dp_knapsack(&items, capacity));
            let greedy = total_value(&items, &greedy_knapsack(&items, capacity));
            // Greedy-by-density plus the max single item is a 1/2
            // approximation; plain greedy can lose at most the largest
            // single item's value relative to optimal.
            let max_item = items.iter().map(|i| i.value).fold(0.0f64, f64::max);
            prop_assert!(greedy + max_item + 1e-9 >= optimal,
                "greedy {greedy} too far below optimal {optimal}");
        }

        #[test]
        fn greedy_never_exceeds_capacity(
            weights in proptest::collection::vec(1usize..20, 1..20),
            capacity in 1usize..50,
        ) {
            let items: Vec<KnapsackItem> = weights
                .iter()
                .enumerate()
                .map(|(i, &w)| item(i as u64, w, (i % 5) as f64))
                .collect();
            let kept = greedy_knapsack(&items, capacity);
            let used: usize = items.iter().filter(|i| kept.contains(&i.id)).map(|i| i.weight).sum();
            prop_assert!(used <= capacity);
        }
    }
}
