//! Privacy admission control (§4.3, "How Does IC-Cache Respect Privacy?").
//!
//! Before an example enters the cache, the admission policy (i) decides
//! whether caching is allowed at all, and (ii) sanitizes sensitive spans —
//! the paper's client-side spaCy scrubbing. Applications choose between
//! rejecting sensitive traffic outright and scrubbing it.

use ic_embed::text::{contains_sensitive, scrub_sensitive};
use ic_llmsim::Example;

/// What happened to a candidate example at admission.
#[derive(Debug, Clone)]
pub enum Admission {
    /// Cache this (possibly scrubbed) example.
    Admit(Box<Example>),
    /// Do not cache; the reason is a stable diagnostic string.
    Reject(&'static str),
}

impl Admission {
    /// Whether the example was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admit(_))
    }
}

/// The admission policy.
#[derive(Debug, Clone)]
pub struct AdmissionPolicy {
    /// Scrub sensitive spans instead of storing them verbatim.
    pub scrub_pii: bool,
    /// Reject examples containing sensitive spans outright (overrides
    /// scrubbing).
    pub reject_sensitive: bool,
    /// Reject examples whose stored response is too short to be a useful
    /// demonstration.
    pub min_response_tokens: u32,
    /// Caching disabled entirely (the `update_cache` opt-out in Fig. 6).
    pub caching_enabled: bool,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            scrub_pii: true,
            reject_sensitive: false,
            min_response_tokens: 4,
            caching_enabled: true,
        }
    }
}

impl AdmissionPolicy {
    /// The strict variant: any sensitive content is rejected.
    pub fn strict() -> Self {
        Self {
            reject_sensitive: true,
            ..Self::default()
        }
    }

    /// Evaluates one candidate example.
    pub fn evaluate(&self, mut example: Example) -> Admission {
        if !self.caching_enabled {
            return Admission::Reject("caching disabled");
        }
        if example.response_tokens < self.min_response_tokens {
            return Admission::Reject("response too short");
        }
        let sensitive =
            contains_sensitive(&example.request_text) || contains_sensitive(&example.response_text);
        if sensitive {
            if self.reject_sensitive {
                return Admission::Reject("sensitive content");
            }
            if self.scrub_pii {
                example.request_text = scrub_sensitive(&example.request_text);
                example.response_text = scrub_sensitive(&example.response_text);
            }
        }
        Admission::Admit(Box::new(example))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelId, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn examples(n: usize) -> Vec<Example> {
        // LMSys has a 4% sensitive rate; crank the count so some show up.
        WorkloadGenerator::new(Dataset::LmsysChat, 61).generate_examples(
            n,
            &ModelSpec::gemini_15_pro(),
            ModelId(0),
            &Generator::new(),
        )
    }

    #[test]
    fn clean_examples_are_admitted_unchanged() {
        let policy = AdmissionPolicy::default();
        for e in examples(50) {
            if !contains_sensitive(&e.request_text) && !contains_sensitive(&e.response_text) {
                let text = e.request_text.clone();
                match policy.evaluate(e) {
                    Admission::Admit(out) => assert_eq!(out.request_text, text),
                    Admission::Reject(r) => panic!("clean example rejected: {r}"),
                }
            }
        }
    }

    #[test]
    fn scrubbing_removes_sensitive_spans_on_admission() {
        let policy = AdmissionPolicy::default();
        let mut seen_sensitive = false;
        for e in examples(400) {
            let was_sensitive =
                contains_sensitive(&e.request_text) || contains_sensitive(&e.response_text);
            if let Admission::Admit(out) = policy.evaluate(e) {
                assert!(!contains_sensitive(&out.request_text));
                assert!(!contains_sensitive(&out.response_text));
                if was_sensitive {
                    seen_sensitive = true;
                    assert!(
                        out.request_text.contains("[REDACTED]")
                            || out.response_text.contains("[REDACTED]")
                    );
                }
            }
        }
        assert!(seen_sensitive, "fixture produced no sensitive examples");
    }

    #[test]
    fn strict_policy_rejects_sensitive() {
        let policy = AdmissionPolicy::strict();
        let mut rejected = 0;
        for e in examples(400) {
            let was_sensitive =
                contains_sensitive(&e.request_text) || contains_sensitive(&e.response_text);
            let out = policy.evaluate(e);
            if was_sensitive {
                assert!(!out.is_admitted());
                rejected += 1;
            } else {
                assert!(out.is_admitted());
            }
        }
        assert!(rejected > 0, "fixture produced no sensitive examples");
    }

    #[test]
    fn disabled_caching_rejects_everything() {
        let policy = AdmissionPolicy {
            caching_enabled: false,
            ..AdmissionPolicy::default()
        };
        let e = examples(1).pop().unwrap();
        assert!(!policy.evaluate(e).is_admitted());
    }

    #[test]
    fn short_responses_are_rejected() {
        let policy = AdmissionPolicy {
            min_response_tokens: 1_000_000,
            ..AdmissionPolicy::default()
        };
        let e = examples(1).pop().unwrap();
        match policy.evaluate(e) {
            Admission::Reject(r) => assert_eq!(r, "response too short"),
            Admission::Admit(_) => panic!("should reject"),
        }
    }
}
