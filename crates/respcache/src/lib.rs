//! Stage-0 predictive response cache (the tier *in front of* the
//! selector).
//!
//! IC-Cache's serving cost is dominated by work that can be skipped
//! outright: on skewed real traffic a large fraction of arrivals are
//! near-duplicates of recently served queries (trending questions,
//! client retries, template prompts). Following InstCache-style
//! predictive response caching and embedding-similarity prompt caching,
//! this crate holds whole served responses keyed by the query
//! *embedding* and answers a lookup with an approximate-nearest-neighbor
//! probe over an [`IvfIndex`] (the same index substrate stage 1 uses,
//! over its own [`ic_embed::EmbeddingSlab`]). A hit above the calibrated
//! accept threshold returns the cached response and lets the engine skip
//! selection, routing, and the entire prefill/decode path.
//!
//! Three policies keep the cache honest and deterministic:
//!
//! - **Calibrated acceptance**: a lookup hits only when the nearest
//!   neighbor's cosine similarity reaches `threshold` (default `0.98` —
//!   near-duplicate territory, see `docs/response-cache.md` for the
//!   calibration argument).
//! - **Byte-budgeted LRU with staleness**: entries are charged an
//!   approximate footprint (`64 + 4·dim + 4·response_tokens` bytes);
//!   exceeding `budget_bytes` evicts in least-recently-touched order
//!   (recency tracked by a monotone touch counter, so eviction order is
//!   deterministic). Entries older than `ttl_s` are stale: a lookup that
//!   lands on one evicts it lazily and retries, so an invalidated
//!   trending answer can never be served past its TTL.
//! - **Predictive pre-population**: a windowed frequency sketch counts
//!   lookups per exact-duplicate key; only queries seen at least
//!   `prepop_min` times inside the current `window_s` window are
//!   *admitted* on a miss. One-off queries never pollute the store, and
//!   a same-tick stampede of N identical arrivals — observed in the
//!   sketch as a batch before the first member is served — pays exactly
//!   one insertion and serves the other N−1 members from it.
//!
//! Every counter the engine surfaces ([`RespCacheStats`]) is a plain
//! integer accumulated in arrival order, so the `resp_cache` block of
//! `BENCH_e2e.json` is byte-deterministic.

use std::collections::BTreeMap;

use ic_embed::Embedding;
use ic_vecindex::{IvfConfig, IvfIndex, VectorIndex};

/// Tuning knobs of the stage-0 tier. Defaults match the engine's
/// `IC_RESP_*` environment knobs.
#[derive(Debug, Clone)]
pub struct RespCacheConfig {
    /// Minimum cosine similarity for a lookup to hit.
    pub threshold: f64,
    /// Byte budget of the store; exceeding it evicts LRU entries.
    pub budget_bytes: usize,
    /// Entry time-to-live in seconds; older entries are stale and are
    /// evicted lazily on lookup.
    pub ttl_s: f64,
    /// Duplicate sightings (within the window) required before a missed
    /// query is admitted into the store.
    pub prepop_min: u64,
    /// Width of the trending-query frequency window, seconds.
    pub window_s: f64,
}

impl Default for RespCacheConfig {
    fn default() -> Self {
        RespCacheConfig {
            threshold: 0.98,
            budget_bytes: 4 << 20,
            ttl_s: 300.0,
            prepop_min: 2,
            window_s: 60.0,
        }
    }
}

/// A whole served response, as the engine needs it to complete a request
/// without touching a model pool.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedResponse {
    /// Catalog id of the model that originally served it.
    pub model: usize,
    /// Whether the original serving was offloaded off the primary.
    pub offloaded: bool,
    /// Latent response quality of the original serving.
    pub quality: f64,
    /// In-context examples the original serving used.
    pub examples: usize,
    /// Tokens of the cached response (drives the byte footprint).
    pub response_tokens: u32,
}

/// Run-scoped counters of the stage-0 tier, all deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RespCacheStats {
    /// Lookups issued (one per non-retry arrival while the tier is on).
    pub lookups: u64,
    /// Lookups answered from the store.
    pub hits: u64,
    /// Entries admitted (all admissions are sketch-gated, i.e.
    /// predictive pre-populations of trending queries).
    pub prepopulations: u64,
    /// Entries evicted because a lookup found them past their TTL.
    pub stale_evictions: u64,
    /// Approximate bytes currently held by the store.
    pub bytes: u64,
}

impl RespCacheStats {
    /// Fraction of lookups served from the store.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// `splitmix64` — the repo's standard cheap avalanche for deterministic
/// hashing.
fn split_mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic identity of a query embedding: a `splitmix64` fold over
/// the element bit patterns. Exact duplicates (same workload request
/// replayed, a stampede of identical arrivals) collapse onto one key;
/// near-duplicates get distinct keys and meet only through the ANN
/// probe.
pub fn embedding_key(embedding: &Embedding) -> u64 {
    let mut h = 0x5E5B_0CAC_4E00_u64;
    for v in embedding.as_slice() {
        h = split_mix64(h ^ u64::from(v.to_bits()));
    }
    h
}

/// One stored response plus its bookkeeping.
#[derive(Debug, Clone)]
struct Entry {
    response: CachedResponse,
    /// When the entry was (re-)inserted; staleness is measured from here.
    inserted_at: f64,
    /// Monotone recency stamp (see `ResponseCache::touch_seq`).
    touched: u64,
    /// Approximate footprint charged against the byte budget.
    bytes: u64,
}

/// Windowed exact-duplicate frequency sketch: counts sightings per key
/// inside the current `window_s` window and forgets everything when the
/// window rolls over. Coarse by design — the goal is to separate
/// trending queries from one-offs, not to rank them.
#[derive(Debug, Default)]
struct FreqSketch {
    window_start: f64,
    counts: BTreeMap<u64, u64>,
}

impl FreqSketch {
    /// Records a sighting of `key` at `now` and returns its in-window
    /// count (including this sighting).
    fn observe(&mut self, key: u64, now: f64, window_s: f64) -> u64 {
        if now - self.window_start > window_s {
            self.counts.clear();
            self.window_start = now;
        }
        let c = self.counts.entry(key).or_insert(0);
        *c += 1;
        *c
    }

    /// In-window count of `key` without recording a sighting.
    fn count(&self, key: u64) -> u64 {
        self.counts.get(&key).copied().unwrap_or(0)
    }
}

/// The stage-0 response cache. See the crate docs for the policy
/// overview; all state is owned (the `IvfIndex` holds its own embedding
/// slab) and every operation is deterministic.
#[derive(Debug)]
pub struct ResponseCache {
    config: RespCacheConfig,
    index: IvfIndex,
    entries: BTreeMap<u64, Entry>,
    /// Recency order: `(touched, key)` — the first map entry is the LRU
    /// victim. Kept in lockstep with `entries[key].touched`.
    lru: BTreeMap<(u64, u64), u64>,
    touch_seq: u64,
    sketch: FreqSketch,
    stats: RespCacheStats,
}

impl ResponseCache {
    /// An empty cache with the given policy knobs.
    pub fn new(config: RespCacheConfig) -> Self {
        ResponseCache {
            config,
            index: IvfIndex::new(IvfConfig::default()),
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            touch_seq: 0,
            sketch: FreqSketch::default(),
            stats: RespCacheStats::default(),
        }
    }

    /// The active policy knobs.
    pub fn config(&self) -> &RespCacheConfig {
        &self.config
    }

    /// Current counters.
    pub fn stats(&self) -> RespCacheStats {
        self.stats
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records a sighting of the query in the trending sketch *without*
    /// performing a lookup. The engine calls this for every member of a
    /// coalesced same-tick batch before serving its first member, so a
    /// stampede of N identical arrivals is already known to be trending
    /// when the first miss decides on admission — the batch pays one
    /// insertion and the remaining N−1 members hit it.
    pub fn observe(&mut self, embedding: &Embedding, now: f64) -> u64 {
        self.sketch
            .observe(embedding_key(embedding), now, self.config.window_s)
    }

    /// The stage-0 probe: nearest stored response by cosine similarity,
    /// accepted at `threshold`. Stale entries the probe lands on are
    /// evicted lazily and the probe retries, so a hit is always fresh.
    /// Counts one lookup (and at most one hit).
    pub fn lookup(&mut self, embedding: &Embedding, now: f64) -> Option<CachedResponse> {
        self.stats.lookups += 1;
        loop {
            let hit = self.index.search(embedding, 1).into_iter().next()?;
            if hit.similarity < self.config.threshold {
                return None;
            }
            if now - self.entries[&hit.id].inserted_at > self.config.ttl_s {
                self.evict(hit.id);
                self.stats.stale_evictions += 1;
                continue;
            }
            self.touch(hit.id);
            self.stats.hits += 1;
            return Some(self.entries[&hit.id].response.clone());
        }
    }

    /// Offers a freshly served response for admission. Admission is
    /// gated by the trending sketch: the query must have been observed
    /// at least `prepop_min` times in the current window (the predictive
    /// pre-population policy — see the crate docs). Re-offering a key
    /// already stored refreshes its timestamp instead of duplicating it.
    /// Returns whether the response was admitted (or refreshed).
    pub fn admit(&mut self, embedding: &Embedding, response: CachedResponse, now: f64) -> bool {
        let key = embedding_key(embedding);
        if self.sketch.count(key) < self.config.prepop_min {
            return false;
        }
        let bytes = entry_bytes(embedding.dim(), response.response_tokens);
        if bytes > self.config.budget_bytes as u64 {
            return false;
        }
        if self.entries.contains_key(&key) {
            // Refresh: new response, new TTL epoch, bumped recency.
            let old = self.entries.get_mut(&key).expect("checked above");
            self.stats.bytes = self.stats.bytes - old.bytes + bytes;
            old.response = response;
            old.inserted_at = now;
            old.bytes = bytes;
            self.touch(key);
        } else {
            self.touch_seq += 1;
            self.entries.insert(
                key,
                Entry {
                    response,
                    inserted_at: now,
                    touched: self.touch_seq,
                    bytes,
                },
            );
            self.lru.insert((self.touch_seq, key), key);
            self.index.insert(key, embedding.clone());
            self.stats.bytes += bytes;
        }
        self.stats.prepopulations += 1;
        while self.stats.bytes > self.config.budget_bytes as u64 {
            let (&slot, &victim) = self.lru.iter().next().expect("bytes > 0 implies entries");
            debug_assert_eq!(slot.1, victim);
            self.evict(victim);
        }
        true
    }

    /// Bumps `key` to most-recently-used.
    fn touch(&mut self, key: u64) {
        let entry = self.entries.get_mut(&key).expect("touch of absent key");
        self.lru.remove(&(entry.touched, key));
        self.touch_seq += 1;
        entry.touched = self.touch_seq;
        self.lru.insert((self.touch_seq, key), key);
    }

    /// Drops `key` from the store, the recency order, and the index.
    fn evict(&mut self, key: u64) {
        let entry = self.entries.remove(&key).expect("evict of absent key");
        self.lru.remove(&(entry.touched, key));
        self.index.remove(key);
        self.stats.bytes -= entry.bytes;
    }
}

/// Approximate footprint of one entry: fixed bookkeeping plus the `f32`
/// key embedding plus ~4 bytes per cached response token.
fn entry_bytes(dim: usize, response_tokens: u32) -> u64 {
    64 + 4 * dim as u64 + 4 * u64::from(response_tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn resp(tokens: u32) -> CachedResponse {
        CachedResponse {
            model: 1,
            offloaded: true,
            quality: 0.9,
            examples: 4,
            response_tokens: tokens,
        }
    }

    fn unit(dim: usize, hot: usize) -> Embedding {
        let mut v = vec![0.0f32; dim];
        v[hot] = 1.0;
        Embedding::from_vec(v)
    }

    fn trending_cache(config: RespCacheConfig) -> ResponseCache {
        ResponseCache::new(config)
    }

    /// Observes `e` enough times for admission to pass at the default
    /// `prepop_min = 2`.
    fn make_trending(cache: &mut ResponseCache, e: &Embedding, now: f64) {
        for _ in 0..cache.config().prepop_min {
            cache.observe(e, now);
        }
    }

    #[test]
    fn exact_duplicate_hits_and_counts() {
        let mut c = trending_cache(RespCacheConfig::default());
        let q = unit(8, 0);
        make_trending(&mut c, &q, 0.0);
        assert!(c.lookup(&q, 0.0).is_none(), "empty store misses");
        assert!(c.admit(&q, resp(100), 0.0));
        let hit = c.lookup(&q, 1.0).expect("exact duplicate must hit");
        assert_eq!(hit, resp(100));
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.prepopulations), (2, 1, 1));
        assert!(s.hit_ratio() > 0.49 && s.hit_ratio() < 0.51);
    }

    #[test]
    fn threshold_gates_near_duplicates() {
        let mut c = trending_cache(RespCacheConfig {
            threshold: 0.95,
            ..RespCacheConfig::default()
        });
        let q = Embedding::from_vec(vec![1.0, 0.0]).normalized();
        make_trending(&mut c, &q, 0.0);
        assert!(c.admit(&q, resp(10), 0.0));
        // cos = 0.6 — well below threshold.
        let far = Embedding::from_vec(vec![0.6, 0.8]);
        assert!(c.lookup(&far, 0.0).is_none());
        // cos ≈ 0.995 — above threshold.
        let near = Embedding::from_vec(vec![0.995, 0.0998]).normalized();
        assert!(c.lookup(&near, 0.0).is_some());
    }

    #[test]
    fn one_off_queries_are_never_admitted() {
        let mut c = trending_cache(RespCacheConfig::default());
        let q = unit(4, 1);
        c.observe(&q, 0.0); // Seen once; prepop_min is 2.
        assert!(!c.admit(&q, resp(10), 0.0));
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().prepopulations, 0);
    }

    #[test]
    fn window_rollover_forgets_trends() {
        let mut c = trending_cache(RespCacheConfig {
            window_s: 10.0,
            ..RespCacheConfig::default()
        });
        let q = unit(4, 0);
        c.observe(&q, 0.0);
        // Past the window: the earlier sighting is forgotten.
        assert_eq!(c.observe(&q, 20.0), 1);
        assert!(!c.admit(&q, resp(10), 20.0));
    }

    #[test]
    fn stale_entries_are_evicted_on_lookup() {
        let mut c = trending_cache(RespCacheConfig {
            ttl_s: 5.0,
            ..RespCacheConfig::default()
        });
        let q = unit(4, 2);
        make_trending(&mut c, &q, 0.0);
        assert!(c.admit(&q, resp(10), 0.0));
        assert!(c.lookup(&q, 4.9).is_some(), "fresh within TTL");
        assert!(c.lookup(&q, 10.0).is_none(), "stale past TTL");
        let s = c.stats();
        assert_eq!(s.stale_evictions, 1);
        assert_eq!(c.len(), 0);
        assert_eq!(s.bytes, 0);
    }

    #[test]
    fn refresh_resets_ttl_and_replaces_response() {
        let mut c = trending_cache(RespCacheConfig {
            ttl_s: 5.0,
            ..RespCacheConfig::default()
        });
        let q = unit(4, 0);
        make_trending(&mut c, &q, 0.0);
        assert!(c.admit(&q, resp(10), 0.0));
        make_trending(&mut c, &q, 4.0);
        assert!(c.admit(&q, resp(20), 4.0));
        assert_eq!(c.len(), 1, "refresh must not duplicate");
        // Alive at t=8 only because the refresh restarted the TTL.
        assert_eq!(c.lookup(&q, 8.0), Some(resp(20)));
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // Each entry: 64 + 16 + 400 = 480 bytes; budget fits two.
        let mut c = trending_cache(RespCacheConfig {
            budget_bytes: 1000,
            ..RespCacheConfig::default()
        });
        let (a, b, d) = (unit(4, 0), unit(4, 1), unit(4, 2));
        for q in [&a, &b, &d] {
            make_trending(&mut c, q, 0.0);
        }
        assert!(c.admit(&a, resp(100), 0.0));
        assert!(c.admit(&b, resp(100), 0.0));
        // Touch `a` so `b` is the LRU victim.
        assert!(c.lookup(&a, 0.0).is_some());
        assert!(c.admit(&d, resp(100), 0.0));
        assert_eq!(c.len(), 2);
        assert!(c.lookup(&a, 0.0).is_some(), "recently touched survives");
        assert!(c.lookup(&d, 0.0).is_some(), "newest survives");
        assert!(c.lookup(&b, 0.0).is_none(), "LRU victim evicted");
        assert_eq!(c.stats().bytes, 960);
    }

    #[test]
    fn oversized_response_is_rejected_outright() {
        let mut c = trending_cache(RespCacheConfig {
            budget_bytes: 100,
            ..RespCacheConfig::default()
        });
        let q = unit(4, 0);
        make_trending(&mut c, &q, 0.0);
        assert!(!c.admit(&q, resp(1000), 0.0));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn stampede_batch_pays_one_insertion() {
        // N identical same-tick arrivals, observed as a batch up front
        // (the engine's coalesced path): the first member misses and is
        // admitted; the other N−1 hit the single entry.
        let n = 8;
        let mut c = trending_cache(RespCacheConfig::default());
        let q = unit(8, 3);
        for _ in 0..n {
            c.observe(&q, 0.0);
        }
        let mut hits = 0;
        for _ in 0..n {
            match c.lookup(&q, 0.0) {
                Some(_) => hits += 1,
                None => {
                    assert!(c.admit(&q, resp(50), 0.0));
                }
            }
        }
        assert_eq!(hits, n - 1);
        assert_eq!(c.stats().prepopulations, 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn embedding_key_is_stable_and_collision_resistant() {
        let a = unit(16, 0);
        let b = unit(16, 1);
        assert_eq!(embedding_key(&a), embedding_key(&a.clone()));
        assert_ne!(embedding_key(&a), embedding_key(&b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Replaying any operation sequence yields identical stats and
        /// store size — the cache is a deterministic state machine.
        /// (Each op is packed into one integer: kind, hot lane, tokens.)
        #[test]
        fn operations_are_deterministic(
            ops in proptest::collection::vec(0u64..3_600, 1..60),
        ) {
            let run = || {
                let mut c = ResponseCache::new(RespCacheConfig {
                    budget_bytes: 4096,
                    ttl_s: 8.0,
                    ..RespCacheConfig::default()
                });
                let mut now = 0.0;
                for &packed in &ops {
                    let (op, hot, tokens) =
                        (packed % 3, (packed / 3 % 6) as usize, (packed / 18) as u32);
                    now += 0.5;
                    let q = unit(8, hot);
                    match op {
                        0 => {
                            c.observe(&q, now);
                        }
                        1 => {
                            c.lookup(&q, now);
                        }
                        _ => {
                            c.admit(&q, resp(tokens), now);
                        }
                    }
                }
                (c.stats(), c.len())
            };
            prop_assert_eq!(run(), run());
        }

        /// The byte counter never exceeds the budget after an admission
        /// settles, and always equals the sum over live entries. (Each
        /// item packs the hot lane and a 1..300 token count.)
        #[test]
        fn byte_accounting_is_exact(
            packed_hots in proptest::collection::vec(0u64..1_495, 1..40),
        ) {
            let mut c = ResponseCache::new(RespCacheConfig {
                budget_bytes: 2048,
                ..RespCacheConfig::default()
            });
            for (i, &packed) in packed_hots.iter().enumerate() {
                let (hot, tokens) = ((packed % 5) as usize, 1 + (packed / 5) as u32);
                let now = i as f64;
                let q = unit(8, hot);
                make_trending(&mut c, &q, now);
                c.admit(&q, resp(tokens), now);
                prop_assert!(c.stats().bytes <= 2048);
                let live: u64 = c.entries.values().map(|e| e.bytes).sum();
                prop_assert_eq!(c.stats().bytes, live);
                prop_assert_eq!(c.entries.len(), c.lru.len());
                prop_assert_eq!(c.entries.len(), c.index.len());
            }
        }
    }
}
