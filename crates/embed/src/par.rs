//! Deterministic work partitioning for the setup-parallel paths.
//!
//! The parallel setup pipeline (`IC_SETUP_THREADS`) farms *pure*
//! per-row work — norms, distances, cluster assignments — out to worker
//! threads over disjoint contiguous row ranges. Every value a worker
//! produces is a pure function of its own rows, and every reduction
//! that is *not* pure (float accumulation, argmin ties, RNG draws)
//! stays sequential in row order on the calling thread. The partition
//! itself is a pure function of `(n, threads)`, so the same inputs
//! split the same way on every run: parallel results are bit-identical
//! to the sequential ones, never "close".

use std::ops::Range;

/// Splits `0..n` into at most `threads` contiguous near-equal ranges,
/// in order. Returns fewer ranges when `n < threads` (never an empty
/// range), and no ranges for `n == 0`. The split is a pure function of
/// `(n, threads)` — deterministic across runs and platforms.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let t = threads.clamp(1, n);
    let base = n / t;
    let rem = n % t;
    let mut ranges = Vec::with_capacity(t);
    let mut start = 0usize;
    for i in 0..t {
        let len = base + usize::from(i < rem);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_tile_the_range_in_order() {
        for n in [0usize, 1, 2, 7, 64, 1000] {
            for t in [1usize, 2, 3, 4, 7, 16, 2000] {
                let ranges = chunk_ranges(n, t);
                let mut next = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap at n={n} t={t}");
                    assert!(!r.is_empty(), "empty chunk at n={n} t={t}");
                    next = r.end;
                }
                assert_eq!(next, n, "chunks must cover 0..{n} (t={t})");
                assert!(ranges.len() <= t.max(1));
            }
        }
    }

    #[test]
    fn more_threads_than_rows_degrades_to_per_row_chunks() {
        let ranges = chunk_ranges(3, 8);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn split_is_deterministic() {
        assert_eq!(chunk_ranges(10, 4), chunk_ranges(10, 4));
        assert_eq!(chunk_ranges(10, 4), vec![0..3, 3..6, 6..8, 8..10]);
    }
}
