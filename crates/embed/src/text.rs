//! Synthetic plaintext with token and byte accounting.
//!
//! The Example Manager stores examples in plaintext and uses plaintext
//! length as the knapsack weight (§4.3), the admission path scrubs
//! personally-identifiable information before caching (§4.3 "How Does
//! IC-Cache Respect Privacy?"), and the serving simulator needs input/output
//! token counts. This module synthesizes text that carries all three
//! signals: topic-specific vocabulary, realistic length distributions
//! (supplied by callers), and optional injected sensitive spans that the
//! scrubber must find.

use rand::{Rng, RngExt};

/// Marker prefix for injected sensitive spans, e.g. emails and phone
/// numbers. Kept textual so plaintext-size accounting stays realistic.
const SENSITIVE_MARKERS: [&str; 3] = ["email:", "phone:", "ssn:"];

/// A piece of synthetic text plus its accounting metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticText {
    /// Rendered plaintext.
    pub text: String,
    /// Number of whitespace-delimited tokens (the simulator's token unit).
    pub tokens: u32,
    /// Whether a sensitive span was injected.
    pub sensitive: bool,
}

impl SyntheticText {
    /// Plaintext size in bytes — the knapsack weight unit.
    pub fn byte_len(&self) -> usize {
        self.text.len()
    }
}

/// Generates topic-flavoured synthetic text.
///
/// # Examples
///
/// ```
/// use ic_embed::TextSynthesizer;
/// use ic_stats::rng::rng_from_seed;
///
/// let synth = TextSynthesizer::new(0.0);
/// let mut rng = rng_from_seed(5);
/// let t = synth.synthesize(3, 12, &mut rng);
/// assert_eq!(t.tokens, 12);
/// assert!(!t.sensitive);
/// ```
#[derive(Debug, Clone)]
pub struct TextSynthesizer {
    /// Probability that a generated text contains one sensitive span.
    sensitive_rate: f64,
}

/// Function words shared across topics, mimicking natural-language filler.
const FUNCTION_WORDS: [&str; 12] = [
    "the", "a", "of", "to", "and", "in", "how", "what", "for", "is", "on", "with",
];

impl TextSynthesizer {
    /// Creates a synthesizer that injects sensitive spans at the given rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is outside `[0, 1]`.
    pub fn new(sensitive_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&sensitive_rate),
            "sensitive_rate must be a probability"
        );
        Self { sensitive_rate }
    }

    /// Synthesizes `tokens` whitespace-delimited tokens about `topic`.
    pub fn synthesize(&self, topic: usize, tokens: u32, rng: &mut impl Rng) -> SyntheticText {
        let tokens = tokens.max(1);
        let mut words: Vec<String> = Vec::with_capacity(tokens as usize);
        for _ in 0..tokens {
            if rng.random::<f64>() < 0.35 {
                words.push(FUNCTION_WORDS[rng.random_range(0..FUNCTION_WORDS.len())].to_owned());
            } else {
                // Topic-specific pseudo-words: stable vocabulary per topic.
                let w = rng.random_range(0..48u32);
                words.push(format!("t{topic}w{w}"));
            }
        }
        let sensitive = rng.random::<f64>() < self.sensitive_rate;
        if sensitive {
            let marker = SENSITIVE_MARKERS[rng.random_range(0..SENSITIVE_MARKERS.len())];
            let pos = rng.random_range(0..words.len());
            words[pos] = format!("{marker}user{}@example.com", rng.random_range(0..10_000u32));
        }
        SyntheticText {
            text: words.join(" "),
            tokens,
            sensitive,
        }
    }
}

/// Returns true if the text contains an injected sensitive span.
pub fn contains_sensitive(text: &str) -> bool {
    SENSITIVE_MARKERS.iter().any(|m| text.contains(m))
}

/// Removes sensitive spans, replacing each with `[REDACTED]`.
///
/// This models the paper's client-side spaCy-based sanitization: the
/// scrubbed text is what the Example Manager is allowed to cache.
pub fn scrub_sensitive(text: &str) -> String {
    text.split_whitespace()
        .map(|w| {
            if SENSITIVE_MARKERS.iter().any(|m| w.starts_with(m)) {
                "[REDACTED]"
            } else {
                w
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::rng::rng_from_seed;

    #[test]
    fn token_count_matches_request() {
        let synth = TextSynthesizer::new(0.0);
        let mut rng = rng_from_seed(1);
        for n in [1u32, 5, 64, 300] {
            let t = synth.synthesize(0, n, &mut rng);
            assert_eq!(t.tokens, n);
            assert_eq!(t.text.split_whitespace().count(), n as usize);
        }
    }

    #[test]
    fn zero_tokens_clamps_to_one() {
        let synth = TextSynthesizer::new(0.0);
        let mut rng = rng_from_seed(2);
        let t = synth.synthesize(0, 0, &mut rng);
        assert_eq!(t.tokens, 1);
    }

    #[test]
    fn topics_have_distinct_vocabulary() {
        let synth = TextSynthesizer::new(0.0);
        let mut rng = rng_from_seed(3);
        let a = synth.synthesize(1, 200, &mut rng);
        let b = synth.synthesize(2, 200, &mut rng);
        assert!(a.text.contains("t1w"));
        assert!(!a.text.contains("t2w"));
        assert!(b.text.contains("t2w"));
    }

    #[test]
    fn sensitive_injection_and_detection() {
        let synth = TextSynthesizer::new(1.0);
        let mut rng = rng_from_seed(4);
        let t = synth.synthesize(0, 20, &mut rng);
        assert!(t.sensitive);
        assert!(contains_sensitive(&t.text));
    }

    #[test]
    fn scrubbing_removes_all_sensitive_spans() {
        let synth = TextSynthesizer::new(1.0);
        let mut rng = rng_from_seed(5);
        for _ in 0..50 {
            let t = synth.synthesize(0, 15, &mut rng);
            let clean = scrub_sensitive(&t.text);
            assert!(!contains_sensitive(&clean), "leak in {clean}");
            assert!(clean.contains("[REDACTED]"));
        }
    }

    #[test]
    fn scrubbing_clean_text_is_identity() {
        let synth = TextSynthesizer::new(0.0);
        let mut rng = rng_from_seed(6);
        let t = synth.synthesize(7, 30, &mut rng);
        assert_eq!(scrub_sensitive(&t.text), t.text);
    }

    #[test]
    fn sensitive_rate_is_respected() {
        let synth = TextSynthesizer::new(0.25);
        let mut rng = rng_from_seed(7);
        let hits = (0..4000)
            .filter(|_| synth.synthesize(0, 10, &mut rng).sensitive)
            .count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn byte_len_reflects_rendered_text() {
        let synth = TextSynthesizer::new(0.0);
        let mut rng = rng_from_seed(8);
        let t = synth.synthesize(0, 10, &mut rng);
        assert_eq!(t.byte_len(), t.text.len());
        assert!(t.byte_len() > 10);
    }
}
