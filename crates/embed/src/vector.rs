//! Dense embedding vectors and their arithmetic.

use rand::{Rng, RngExt};

/// A dense embedding vector.
///
/// Components are stored as `f32` (matching production embedding stores;
/// one million cached examples at 64 dims is ~256 MB as `f64` but half that
/// as `f32`), while reductions accumulate in `f64` for stability.
///
/// # Examples
///
/// ```
/// use ic_embed::Embedding;
///
/// let a = Embedding::from_vec(vec![1.0, 0.0]);
/// let b = Embedding::from_vec(vec![0.0, 1.0]);
/// assert_eq!(a.cosine(&b), 0.0);
/// assert_eq!(a.cosine(&a), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding {
    data: Vec<f32>,
}

impl Embedding {
    /// Wraps a raw vector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        Self { data }
    }

    /// An all-zeros embedding of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self {
            data: vec![0.0; dim],
        }
    }

    /// Draws an isotropic Gaussian vector with per-component standard
    /// deviation `sigma`.
    pub fn gaussian(dim: usize, sigma: f64, rng: &mut impl Rng) -> Self {
        let data = (0..dim)
            .map(|_| {
                // Box–Muller per component; embed stays independent of
                // ic-stats' Normal to avoid an unnecessary reseed contract.
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (z * sigma) as f32
            })
            .collect();
        Self { data }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Read-only component view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable component view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Dot product accumulated in `f64`.
    ///
    /// Delegates to [`dot_slices`] so the owned and slab-resident
    /// representations share one reduction, bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ (a programming error in this workspace:
    /// all embeddings in one space share a dimension).
    pub fn dot(&self, other: &Embedding) -> f64 {
        assert_eq!(self.dim(), other.dim(), "embedding dimension mismatch");
        dot_slices(&self.data, &other.data)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Cosine similarity in `[-1, 1]`; zero vectors yield 0.0.
    pub fn cosine(&self, other: &Embedding) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0)
    }

    /// Scales the vector to unit norm (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            let inv = (1.0 / n) as f32;
            for v in &mut self.data {
                *v *= inv;
            }
        }
    }

    /// Returns a unit-norm copy.
    pub fn normalized(&self) -> Embedding {
        let mut out = self.clone();
        out.normalize();
        out
    }

    /// Adds `k * other` into `self` component-wise.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn add_scaled(&mut self, other: &Embedding, k: f64) {
        assert_eq!(self.dim(), other.dim(), "embedding dimension mismatch");
        let kf = k as f32;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += kf * b;
        }
    }

    /// Component-wise midpoint with another vector, used by K-means.
    pub fn mean_of(vectors: &[&Embedding]) -> Option<Embedding> {
        let first = vectors.first()?;
        let mut acc = Embedding::zeros(first.dim());
        for v in vectors {
            acc.add_scaled(v, 1.0);
        }
        let inv = 1.0 / vectors.len() as f64;
        for c in &mut acc.data {
            *c = (f64::from(*c) * inv) as f32;
        }
        Some(acc)
    }

    /// Squared Euclidean distance.
    ///
    /// Delegates to [`sq_dist_slices`] so the owned and slab-resident
    /// representations share one reduction, bit for bit.
    pub fn sq_dist(&self, other: &Embedding) -> f64 {
        assert_eq!(self.dim(), other.dim(), "embedding dimension mismatch");
        sq_dist_slices(&self.data, &other.data)
    }
}

/// Squared Euclidean distance of two equal-length component slices —
/// bit-identical to [`Embedding::sq_dist`] on the same components
/// (same iteration order, same `f64` widening, same accumulator).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn sq_dist_slices(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "embedding dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(&a, &b)| {
            let d = f64::from(a) - f64::from(b);
            d * d
        })
        .sum()
}

/// Dot product of two equal-length `f32` component slices, accumulated
/// in `f64` — the single reduction behind [`Embedding::dot`] and every
/// slab-resident scoring path. Keeping one definition (same iteration
/// order, same widening, same accumulator) is what makes the arena/SoA
/// layout a pure layout change: a slab row and the `Embedding` it was
/// copied from produce bit-identical dots, norms, and cosines.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_slices(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "embedding dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(&a, &b)| f64::from(a) * f64::from(b))
        .sum()
}

/// Euclidean norm of a component slice — bit-identical to
/// [`Embedding::norm`] on the same components.
pub fn norm_slice(a: &[f32]) -> f64 {
    dot_slices(a, a).sqrt()
}

/// Cosine similarity of two component slices with pre-computed norms —
/// bit-identical to [`Embedding::cosine`], which evaluates
/// `(a.dot(b) / (a.norm() * b.norm())).clamp(-1.0, 1.0)` with a zero
/// check on the denominator. Callers hoist the norms (once per query,
/// once per stored row) instead of recomputing them per pair.
pub fn cosine_with_norms(a: &[f32], a_norm: f64, b: &[f32], b_norm: f64) -> f64 {
    let denom = a_norm * b_norm;
    if denom == 0.0 {
        return 0.0;
    }
    (dot_slices(a, b) / denom).clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::rng::rng_from_seed;

    #[test]
    fn slice_reductions_match_embedding_methods_bitwise() {
        let mut rng = rng_from_seed(9);
        let a = Embedding::gaussian(33, 1.3, &mut rng);
        let b = Embedding::gaussian(33, 0.7, &mut rng);
        assert_eq!(
            dot_slices(a.as_slice(), b.as_slice()).to_bits(),
            a.dot(&b).to_bits()
        );
        assert_eq!(norm_slice(a.as_slice()).to_bits(), a.norm().to_bits());
        assert_eq!(
            cosine_with_norms(a.as_slice(), a.norm(), b.as_slice(), b.norm()).to_bits(),
            a.cosine(&b).to_bits()
        );
        let z = Embedding::zeros(33);
        assert_eq!(
            cosine_with_norms(z.as_slice(), z.norm(), b.as_slice(), b.norm()),
            0.0
        );
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let v = Embedding::from_vec(vec![3.0, 4.0]);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_of_opposite_is_minus_one() {
        let a = Embedding::from_vec(vec![1.0, 2.0]);
        let b = Embedding::from_vec(vec![-1.0, -2.0]);
        assert!((a.cosine(&b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_cosine_is_zero() {
        let z = Embedding::zeros(4);
        let v = Embedding::from_vec(vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(z.cosine(&v), 0.0);
    }

    #[test]
    fn normalize_produces_unit_norm() {
        let mut v = Embedding::from_vec(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        assert!((v.as_slice()[0] - 0.6).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_is_noop() {
        let mut z = Embedding::zeros(3);
        z.normalize();
        assert_eq!(z, Embedding::zeros(3));
    }

    #[test]
    fn gaussian_has_expected_scale() {
        let mut rng = rng_from_seed(1);
        let v = Embedding::gaussian(10_000, 0.5, &mut rng);
        // Norm of an isotropic Gaussian concentrates near sigma * sqrt(dim).
        let expected = 0.5 * (10_000f64).sqrt();
        assert!((v.norm() - expected).abs() / expected < 0.05);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = Embedding::from_vec(vec![1.0, 1.0]);
        let b = Embedding::from_vec(vec![2.0, -2.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 0.0]);
    }

    #[test]
    fn mean_of_averages() {
        let a = Embedding::from_vec(vec![0.0, 2.0]);
        let b = Embedding::from_vec(vec![4.0, 0.0]);
        let m = Embedding::mean_of(&[&a, &b]).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 1.0]);
        assert!(Embedding::mean_of(&[]).is_none());
    }

    #[test]
    fn sq_dist_matches_hand_computation() {
        let a = Embedding::from_vec(vec![1.0, 2.0]);
        let b = Embedding::from_vec(vec![4.0, 6.0]);
        assert!((a.sq_dist(&b) - 25.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_dimension_mismatch() {
        let a = Embedding::zeros(2);
        let b = Embedding::zeros(3);
        let _ = a.dot(&b);
    }
}
