//! The observable embedding extractor.
//!
//! IC-Cache never sees the latent vectors that generate requests — it sees
//! what an embedding model (the paper uses T5) produces. [`Embedder`] models
//! that extraction as a noisy normalized view of the latent vector: real
//! encoders capture semantic neighbourhoods well but not perfectly, and that
//! imperfection is exactly what makes relevance a weak proxy for
//! helpfulness (Fig. 7) and gives the IVF index non-trivial recall work.

use rand::Rng;

use crate::vector::Embedding;

/// A simulated text-embedding model.
///
/// # Examples
///
/// ```
/// use ic_embed::{Embedder, Embedding};
/// use ic_stats::rng::rng_from_seed;
///
/// let embedder = Embedder::new(0.2);
/// let mut rng = rng_from_seed(3);
/// let latent = Embedding::from_vec(vec![1.0, 0.0, 0.0, 0.0]).normalized();
/// let observed = embedder.embed(&latent, &mut rng);
/// assert!(observed.cosine(&latent) > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Embedder {
    /// Total observation-noise standard deviation (distributed across
    /// components). 0.0 means the embedder recovers latents exactly.
    noise: f64,
}

impl Embedder {
    /// Creates an embedder with the given observation noise.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is negative or non-finite.
    pub fn new(noise: f64) -> Self {
        assert!(noise.is_finite() && noise >= 0.0, "invalid noise {noise}");
        Self { noise }
    }

    /// A noise level calibrated so that observed similarities track latent
    /// similarities with realistic (T5-like) fidelity.
    pub fn standard() -> Self {
        Self::new(0.2)
    }

    /// The configured noise level.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Produces the observable embedding for a latent vector.
    pub fn embed(&self, latent: &Embedding, rng: &mut impl Rng) -> Embedding {
        if self.noise == 0.0 {
            return latent.normalized();
        }
        let per_component = self.noise / (latent.dim() as f64).sqrt();
        let mut v = latent.clone();
        let noise = Embedding::gaussian(latent.dim(), per_component, rng);
        v.add_scaled(&noise, 1.0);
        v.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topic::{TopicSpace, TopicSpaceConfig};
    use ic_stats::RunningStats;
    use ic_stats::rng::rng_from_seed;

    #[test]
    fn zero_noise_recovers_latent() {
        let e = Embedder::new(0.0);
        let mut rng = rng_from_seed(1);
        let latent = Embedding::gaussian(16, 1.0, &mut rng).normalized();
        let obs = e.embed(&latent, &mut rng);
        assert!(obs.cosine(&latent) > 1.0 - 1e-6);
    }

    #[test]
    fn noise_reduces_but_preserves_similarity_structure() {
        let space = TopicSpace::generate(11, TopicSpaceConfig::default());
        let embedder = Embedder::standard();
        let mut rng = rng_from_seed(2);
        let mut same = RunningStats::new();
        let mut cross = RunningStats::new();
        for t in 0..32 {
            let a = embedder.embed(&space.sample_member(t, &mut rng), &mut rng);
            let b = embedder.embed(&space.sample_member(t, &mut rng), &mut rng);
            let c = embedder.embed(
                &space.sample_member((t + 41) % space.num_topics(), &mut rng),
                &mut rng,
            );
            same.push(a.cosine(&b));
            cross.push(a.cosine(&c));
        }
        // Structure preserved: same-topic clearly above cross-topic.
        assert!(same.mean() > cross.mean() + 0.15);
        // But with visible degradation versus the noiseless case.
        assert!(same.mean() < 0.95);
    }

    #[test]
    fn output_is_unit_norm() {
        let e = Embedder::new(0.5);
        let mut rng = rng_from_seed(3);
        let latent = Embedding::gaussian(32, 1.0, &mut rng).normalized();
        let obs = e.embed(&latent, &mut rng);
        assert!((obs.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "invalid noise")]
    fn rejects_negative_noise() {
        let _ = Embedder::new(-0.1);
    }
}
