//! Latent topic space, synthetic text, and dense-embedding substrate.
//!
//! The paper embeds every request with a T5 encoder and relies on two
//! geometric facts (§2.3, Fig. 3a): semantically-similar requests have
//! cosine similarity above ~0.8 while random request pairs sit near 0.5.
//! No embedding model is available offline, so this crate inverts the
//! construction: requests are *generated from* latent topic vectors, and
//! the "embedding model" ([`Embedder`]) returns a noisy normalized view of
//! the latent vector. The resulting geometry matches the paper's measured
//! statistics by construction, and the calibration is locked in by tests.
//!
//! Layout:
//! - [`vector`] — the [`Embedding`] type and dense-vector arithmetic.
//! - [`slab`] — [`EmbeddingSlab`]: contiguous (SoA) row storage with
//!   cached norms, the hot-path layout behind the vector index.
//! - [`par`] — deterministic contiguous work partitioning for the
//!   bit-identical parallel setup paths (`IC_SETUP_THREADS`).
//! - [`topic`] — [`TopicSpace`]: shared-anchor + topic-direction latent
//!   construction with tunable cross-topic and within-topic similarity.
//! - [`embedder`] — the observable embedding extractor (imperfect view).
//! - [`text`] — synthetic plaintext with token/byte accounting and optional
//!   sensitive-span injection for the admission-control path.

pub mod embedder;
pub mod par;
pub mod slab;
pub mod text;
pub mod topic;
pub mod vector;

pub use embedder::Embedder;
pub use slab::EmbeddingSlab;
pub use text::{SyntheticText, TextSynthesizer, contains_sensitive, scrub_sensitive};
pub use topic::{TopicSpace, TopicSpaceConfig};
pub use vector::{Embedding, cosine_with_norms, dot_slices, norm_slice, sq_dist_slices};
