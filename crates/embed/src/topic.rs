//! Latent topic space calibrated to the paper's similarity statistics.
//!
//! Construction: every latent request vector is
//!
//! ```text
//! latent = normalize( sqrt(w) * anchor + sqrt(1 - w) * topic_dir + noise )
//! ```
//!
//! where `anchor` is one fixed unit vector shared by the whole space,
//! `topic_dir` is a per-topic random unit vector orthogonalized against the
//! anchor, and `noise` is isotropic Gaussian per request. In high dimension
//! two random topic directions are nearly orthogonal, so the expected
//! cosine between requests of *different* topics is ≈ `w` (the paper's 0.5
//! for random pairs) while requests of the *same* topic land at
//! ≈ `1 / (1 + sigma^2)` (the paper's ≥ 0.8 for similar pairs; §2.3).

use ic_stats::rng::rng_from_seed;
use rand::Rng;

use crate::vector::Embedding;

/// Configuration for a [`TopicSpace`].
#[derive(Debug, Clone)]
pub struct TopicSpaceConfig {
    /// Embedding dimensionality. 64 is plenty: random unit vectors at
    /// dim 64 have |cos| ~ 0.125 on average, well under the topic signal.
    pub dim: usize,
    /// Number of distinct topics.
    pub num_topics: usize,
    /// Weight of the shared anchor (expected cross-topic cosine).
    pub anchor_weight: f64,
    /// Per-request latent noise standard deviation (total, not per
    /// component); controls within-topic cosine.
    pub member_noise: f64,
}

impl Default for TopicSpaceConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            num_topics: 256,
            anchor_weight: 0.5,
            member_noise: 0.38,
        }
    }
}

/// A generated latent topic space.
///
/// # Examples
///
/// ```
/// use ic_embed::{TopicSpace, TopicSpaceConfig};
/// use ic_stats::rng::rng_from_seed;
///
/// let space = TopicSpace::generate(7, TopicSpaceConfig::default());
/// let mut rng = rng_from_seed(1);
/// let a = space.sample_member(0, &mut rng);
/// let b = space.sample_member(0, &mut rng);
/// assert!(a.cosine(&b) > 0.7); // Same topic: similar.
/// ```
#[derive(Debug, Clone)]
pub struct TopicSpace {
    config: TopicSpaceConfig,
    anchor: Embedding,
    topic_dirs: Vec<Embedding>,
}

impl TopicSpace {
    /// Deterministically generates a topic space from a seed.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_topics == 0` (configuration error).
    pub fn generate(seed: u64, config: TopicSpaceConfig) -> Self {
        assert!(config.dim > 0, "dim must be positive");
        assert!(config.num_topics > 0, "num_topics must be positive");
        assert!(
            (0.0..1.0).contains(&config.anchor_weight),
            "anchor_weight must be in [0, 1)"
        );
        let mut rng = rng_from_seed(seed);
        let anchor = Embedding::gaussian(config.dim, 1.0, &mut rng).normalized();
        let topic_dirs = (0..config.num_topics)
            .map(|_| {
                let mut dir = Embedding::gaussian(config.dim, 1.0, &mut rng);
                // Project out the anchor so the anchor weight fully controls
                // the cross-topic floor.
                let proj = dir.dot(&anchor);
                dir.add_scaled(&anchor, -proj);
                dir.normalized()
            })
            .collect();
        Self {
            config,
            anchor,
            topic_dirs,
        }
    }

    /// Number of topics.
    pub fn num_topics(&self) -> usize {
        self.topic_dirs.len()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The configuration used at generation time.
    pub fn config(&self) -> &TopicSpaceConfig {
        &self.config
    }

    /// The noiseless center of a topic.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    pub fn topic_center(&self, topic: usize) -> Embedding {
        let w = self.config.anchor_weight;
        let mut v = Embedding::zeros(self.config.dim);
        v.add_scaled(&self.anchor, w.sqrt());
        v.add_scaled(&self.topic_dirs[topic], (1.0 - w).sqrt());
        v.normalized()
    }

    /// Samples a latent vector for one request/example of the given topic.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    pub fn sample_member(&self, topic: usize, rng: &mut impl Rng) -> Embedding {
        let mut v = self.topic_center(topic);
        let per_component = self.config.member_noise / (self.config.dim as f64).sqrt();
        let noise = Embedding::gaussian(self.config.dim, per_component, rng);
        v.add_scaled(&noise, 1.0);
        v.normalized()
    }

    /// Samples a latent vector that interpolates two topics (used for
    /// "drifting" request distributions in the dynamics experiments).
    pub fn sample_blend(&self, a: usize, b: usize, t: f64, rng: &mut impl Rng) -> Embedding {
        let mut v = self.topic_center(a);
        let vb = self.topic_center(b);
        let t = t.clamp(0.0, 1.0);
        for (x, &y) in v.as_mut_slice().iter_mut().zip(vb.as_slice()) {
            *x = (1.0 - t) as f32 * *x + t as f32 * y;
        }
        let per_component = self.config.member_noise / (self.config.dim as f64).sqrt();
        let noise = Embedding::gaussian(self.config.dim, per_component, rng);
        v.add_scaled(&noise, 1.0);
        v.normalized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::RunningStats;

    fn space() -> TopicSpace {
        TopicSpace::generate(42, TopicSpaceConfig::default())
    }

    #[test]
    fn generation_is_deterministic() {
        let a = space();
        let b = space();
        assert_eq!(a.topic_center(3), b.topic_center(3));
    }

    #[test]
    fn members_are_unit_norm() {
        let s = space();
        let mut rng = rng_from_seed(5);
        for t in 0..8 {
            let m = s.sample_member(t, &mut rng);
            assert!((m.norm() - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn same_topic_similarity_is_high() {
        // Calibration lock for Fig. 3a: same-topic pairs should mostly land
        // above the paper's 0.8 "strong semantic overlap" threshold.
        let s = space();
        let mut rng = rng_from_seed(6);
        let mut sims = RunningStats::new();
        for t in 0..32 {
            let a = s.sample_member(t, &mut rng);
            let b = s.sample_member(t, &mut rng);
            sims.push(a.cosine(&b));
        }
        assert!(
            sims.mean() > 0.82,
            "same-topic mean cosine too low: {}",
            sims.mean()
        );
    }

    #[test]
    fn cross_topic_similarity_is_near_anchor_weight() {
        // Calibration lock: random pairs sit near 0.5 as in §2.3.
        let s = space();
        let mut rng = rng_from_seed(7);
        let mut sims = RunningStats::new();
        for t in 0..64 {
            let a = s.sample_member(t % s.num_topics(), &mut rng);
            let b = s.sample_member((t + 97) % s.num_topics(), &mut rng);
            sims.push(a.cosine(&b));
        }
        assert!(
            (sims.mean() - 0.5).abs() < 0.1,
            "cross-topic mean cosine {} should be near 0.5",
            sims.mean()
        );
    }

    #[test]
    fn same_topic_beats_cross_topic() {
        let s = space();
        let mut rng = rng_from_seed(8);
        let mut same = RunningStats::new();
        let mut cross = RunningStats::new();
        for t in 0..32 {
            let a = s.sample_member(t, &mut rng);
            same.push(a.cosine(&s.sample_member(t, &mut rng)));
            cross.push(a.cosine(&s.sample_member((t + 13) % s.num_topics(), &mut rng)));
        }
        assert!(same.mean() > cross.mean() + 0.2);
    }

    #[test]
    fn blend_interpolates_between_topics() {
        let s = space();
        let mut rng = rng_from_seed(9);
        let a = s.topic_center(0);
        let b = s.topic_center(1);
        let mid = s.sample_blend(0, 1, 0.5, &mut rng);
        let to_a = mid.cosine(&a);
        let to_b = mid.cosine(&b);
        assert!((to_a - to_b).abs() < 0.2, "midpoint should be balanced");
        let near_a = s.sample_blend(0, 1, 0.05, &mut rng);
        assert!(near_a.cosine(&a) > near_a.cosine(&b));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_topic_panics() {
        let s = space();
        let mut rng = rng_from_seed(10);
        let _ = s.sample_member(s.num_topics(), &mut rng);
    }
}
