//! Arena (SoA) storage for embedding payloads.
//!
//! The vector index used to hold one heap-allocated `Vec<f32>` per
//! stored example, so a posting-list scan chased a pointer per item and
//! recomputed each item's norm on every visit. [`EmbeddingSlab`] packs
//! all rows of one embedding space into a single contiguous `f32` slab
//! (structure-of-arrays) and caches each row's Euclidean norm at insert
//! time:
//!
//! - **Locality**: a list scan streams consecutive cache lines instead
//!   of dereferencing per-item allocations.
//! - **Norm caching**: `norm_slice(row)` is a pure function of the row,
//!   so computing it once at insert and reusing it on every scan is
//!   bit-identical to recomputing it per visit.
//!
//! Slots are stable: removing a row parks its slot on a free list and
//! later inserts reuse it, so surviving slots never move and id → slot
//! maps stay valid across churn. All arithmetic goes through the shared
//! slice reductions in [`crate::vector`], which [`Embedding`] itself
//! delegates to — the slab is a pure layout change, never a numeric one.

use crate::vector::{Embedding, norm_slice};

/// Contiguous storage for fixed-dimension embedding rows with cached
/// per-row norms and free-list slot reuse.
///
/// This is the backing store of `ic_vecindex::IvfIndex`'s posting
/// lists — the single-thread hot path of stage-1 selection — and the
/// reason a candidate scan costs one dot product plus two cached norms
/// per item with no pointer chasing.
///
/// Invariants the callers lean on:
///
/// - **Fixed dimension.** The first [`insert`](Self::insert) fixes the
///   row width; inserting a row of any other width panics (a
///   dimension mix-up is an indexing bug, never data).
/// - **Stable slots.** A slot returned by `insert` addresses the same
///   row until [`remove`](Self::remove)d; removal parks the slot on a
///   free list (LIFO) for reuse and never moves surviving rows, so
///   external id → slot maps stay valid across churn.
/// - **Bitwise norm determinism.** [`norm`](Self::norm) returns
///   exactly what `norm_slice` computed at insert time, which is
///   bit-identical to recomputing it per visit — caching is a pure
///   speedup, invisible to the byte-determinism contract.
///
/// # Examples
///
/// ```
/// use ic_embed::{Embedding, EmbeddingSlab};
///
/// let mut slab = EmbeddingSlab::new();
/// let e = Embedding::from_vec(vec![3.0, 4.0]);
/// let slot = slab.insert(e.as_slice());
/// assert_eq!(slab.row(slot), e.as_slice());
/// assert_eq!(slab.norm(slot).to_bits(), e.norm().to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EmbeddingSlab {
    /// Row width; fixed by the first insert.
    dim: Option<usize>,
    /// Row-major payload: slot `s` occupies `data[s*dim .. (s+1)*dim]`.
    data: Vec<f32>,
    /// Cached Euclidean norm per slot (stale for freed slots).
    norms: Vec<f64>,
    /// Freed slots awaiting reuse.
    free: Vec<u32>,
}

impl EmbeddingSlab {
    /// Creates an empty slab; the first insert fixes the dimension.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.norms.len() - self.free.len()
    }

    /// Whether no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row width, once fixed by the first insert.
    pub fn dim(&self) -> Option<usize> {
        self.dim
    }

    /// Copies `row` into the slab (reusing a freed slot when one is
    /// available) and returns its slot. The row's norm is computed once
    /// here and served from cache thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `row` does not match the slab's established dimension.
    pub fn insert(&mut self, row: &[f32]) -> u32 {
        let dim = *self.dim.get_or_insert(row.len());
        assert_eq!(row.len(), dim, "embedding dimension mismatch");
        let norm = norm_slice(row);
        match self.free.pop() {
            Some(slot) => {
                let start = slot as usize * dim;
                self.data[start..start + dim].copy_from_slice(row);
                self.norms[slot as usize] = norm;
                slot
            }
            None => {
                let slot = u32::try_from(self.norms.len()).expect("slab slot overflow");
                self.data.extend_from_slice(row);
                self.norms.push(norm);
                slot
            }
        }
    }

    /// Bulk [`insert`](Self::insert): copies every row (in order) and
    /// returns their slots. Slot assignment, data placement and the
    /// free-list evolution are exactly the per-row loop's; the only
    /// difference is that the per-row norms — pure functions of their
    /// rows — are computed up front over `threads` disjoint contiguous
    /// row chunks, so the final state is bit-identical to sequential
    /// inserts at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if any row does not match the slab's established
    /// dimension.
    pub fn insert_bulk(&mut self, rows: &[&[f32]], threads: usize) -> Vec<u32> {
        if rows.is_empty() {
            return Vec::new();
        }
        let dim = *self.dim.get_or_insert(rows[0].len());
        for row in rows {
            assert_eq!(row.len(), dim, "embedding dimension mismatch");
        }
        let mut norms = vec![0.0f64; rows.len()];
        let ranges = crate::par::chunk_ranges(rows.len(), threads);
        if ranges.len() <= 1 {
            for (n, row) in norms.iter_mut().zip(rows) {
                *n = norm_slice(row);
            }
        } else {
            std::thread::scope(|s| {
                let mut rest = norms.as_mut_slice();
                for range in &ranges {
                    let (chunk, tail) = rest.split_at_mut(range.len());
                    rest = tail;
                    let rows = &rows[range.start..range.end];
                    s.spawn(move || {
                        for (n, row) in chunk.iter_mut().zip(rows) {
                            *n = norm_slice(row);
                        }
                    });
                }
            });
        }
        rows.iter()
            .zip(&norms)
            .map(|(row, &norm)| match self.free.pop() {
                Some(slot) => {
                    let start = slot as usize * dim;
                    self.data[start..start + dim].copy_from_slice(row);
                    self.norms[slot as usize] = norm;
                    slot
                }
                None => {
                    let slot = u32::try_from(self.norms.len()).expect("slab slot overflow");
                    self.data.extend_from_slice(row);
                    self.norms.push(norm);
                    slot
                }
            })
            .collect()
    }

    /// Releases `slot` for reuse. The caller owns the id → slot map and
    /// must not read a slot after removing it.
    pub fn remove(&mut self, slot: u32) {
        debug_assert!((slot as usize) < self.norms.len(), "slot out of range");
        debug_assert!(!self.free.contains(&slot), "double free of slab slot");
        self.free.push(slot);
    }

    /// The components of a live row.
    pub fn row(&self, slot: u32) -> &[f32] {
        let dim = self.dim.expect("slab has rows");
        let start = slot as usize * dim;
        &self.data[start..start + dim]
    }

    /// The cached Euclidean norm of a live row — bit-identical to
    /// `norm_slice(self.row(slot))`.
    pub fn norm(&self, slot: u32) -> f64 {
        self.norms[slot as usize]
    }

    /// Materializes a live row as an owned [`Embedding`] (used by the
    /// rare retrain path, which hands owned vectors to K-means).
    pub fn to_embedding(&self, slot: u32) -> Embedding {
        Embedding::from_vec(self.row(slot).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::rng::rng_from_seed;

    #[test]
    fn rows_and_norms_round_trip_bitwise() {
        let mut rng = rng_from_seed(31);
        let mut slab = EmbeddingSlab::new();
        let embeddings: Vec<Embedding> = (0..17)
            .map(|_| Embedding::gaussian(24, 1.0, &mut rng))
            .collect();
        let slots: Vec<u32> = embeddings
            .iter()
            .map(|e| slab.insert(e.as_slice()))
            .collect();
        assert_eq!(slab.len(), 17);
        assert_eq!(slab.dim(), Some(24));
        for (e, &slot) in embeddings.iter().zip(&slots) {
            assert_eq!(slab.row(slot), e.as_slice());
            assert_eq!(slab.norm(slot).to_bits(), e.norm().to_bits());
            assert_eq!(slab.to_embedding(slot), *e);
        }
    }

    #[test]
    fn freed_slots_are_reused_and_survivors_stay_put() {
        let mut slab = EmbeddingSlab::new();
        let a = slab.insert(&[1.0, 0.0]);
        let b = slab.insert(&[0.0, 1.0]);
        let c = slab.insert(&[1.0, 1.0]);
        slab.remove(b);
        assert_eq!(slab.len(), 2);
        let d = slab.insert(&[2.0, 2.0]);
        assert_eq!(d, b, "freed slot must be reused");
        assert_eq!(slab.row(a), &[1.0, 0.0]);
        assert_eq!(slab.row(c), &[1.0, 1.0]);
        assert_eq!(slab.row(d), &[2.0, 2.0]);
        assert_eq!(slab.norm(d).to_bits(), norm_slice(&[2.0, 2.0]).to_bits());
        assert_eq!(slab.len(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_are_rejected() {
        let mut slab = EmbeddingSlab::new();
        slab.insert(&[1.0, 2.0]);
        slab.insert(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn insert_bulk_matches_sequential_inserts_bitwise() {
        let mut rng = rng_from_seed(77);
        let embeddings: Vec<Embedding> = (0..23)
            .map(|_| Embedding::gaussian(16, 1.0, &mut rng))
            .collect();
        let rows: Vec<&[f32]> = embeddings.iter().map(|e| e.as_slice()).collect();
        // More threads than rows must still tile the work correctly.
        for threads in [1usize, 2, 4, 64] {
            let mut seq = EmbeddingSlab::new();
            // Churn first so the bulk path exercises free-list reuse.
            let a = seq.insert(&[0.0f32; 16]);
            let b = seq.insert(&[1.0f32; 16]);
            seq.remove(a);
            seq.remove(b);
            let mut par = seq.clone();
            let seq_slots: Vec<u32> = rows.iter().map(|r| seq.insert(r)).collect();
            let par_slots = par.insert_bulk(&rows, threads);
            assert_eq!(seq_slots, par_slots, "threads={threads}");
            for &slot in &par_slots {
                assert_eq!(par.row(slot), seq.row(slot), "threads={threads}");
                assert_eq!(
                    par.norm(slot).to_bits(),
                    seq.norm(slot).to_bits(),
                    "threads={threads}"
                );
            }
            assert_eq!(par.len(), seq.len());
        }
    }

    #[test]
    fn empty_slab_reports_empty() {
        let slab = EmbeddingSlab::new();
        assert!(slab.is_empty());
        assert_eq!(slab.dim(), None);
    }
}
