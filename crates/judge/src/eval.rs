//! Win-rate and average-score aggregation.

use crate::TIE_BAND;

/// Classification of one pairwise mean score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Mean score above the tie band: A wins.
    Win,
    /// Mean score within the tie band.
    Tie,
    /// Mean score below the tie band: A loses.
    Loss,
}

impl Verdict {
    /// Classifies a mean score using the paper's `[-0.3, 0.3]` tie band.
    pub fn from_score(score: f64) -> Verdict {
        if score > TIE_BAND {
            Verdict::Win
        } else if score < -TIE_BAND {
            Verdict::Loss
        } else {
            Verdict::Tie
        }
    }
}

/// Accumulates pairwise scores into the paper's quality metrics.
///
/// # Examples
///
/// ```
/// use ic_judge::PairwiseEval;
///
/// let mut eval = PairwiseEval::new();
/// eval.record(1.5);   // win
/// eval.record(0.0);   // tie
/// eval.record(-2.0);  // loss
/// assert_eq!(eval.win_rate(), 0.5); // (1 + 0.5*1) / 3
/// ```
#[derive(Debug, Clone, Default)]
pub struct PairwiseEval {
    wins: u64,
    ties: u64,
    losses: u64,
    score_sum: f64,
}

impl PairwiseEval {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the mean score of one query's balanced comparison.
    pub fn record(&mut self, mean_score: f64) {
        match Verdict::from_score(mean_score) {
            Verdict::Win => self.wins += 1,
            Verdict::Tie => self.ties += 1,
            Verdict::Loss => self.losses += 1,
        }
        self.score_sum += mean_score;
    }

    /// Number of recorded queries.
    pub fn total(&self) -> u64 {
        self.wins + self.ties + self.losses
    }

    /// `(#wins + 0.5 * #ties) / #total` (§6.1); 0.5 when empty.
    pub fn win_rate(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.5;
        }
        (self.wins as f64 + 0.5 * self.ties as f64) / n as f64
    }

    /// Mean pairwise score; 0.0 when empty.
    pub fn average_score(&self) -> f64 {
        let n = self.total();
        if n == 0 {
            return 0.0;
        }
        self.score_sum / n as f64
    }

    /// Win/tie/loss counts.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.wins, self.ties, self.losses)
    }

    /// Merges another accumulator.
    pub fn merge(&mut self, other: &PairwiseEval) {
        self.wins += other.wins;
        self.ties += other.ties;
        self.losses += other.losses;
        self.score_sum += other.score_sum;
    }
}

/// Win rate of a score slice (convenience over [`PairwiseEval`]).
pub fn win_rate(scores: &[f64]) -> f64 {
    let mut e = PairwiseEval::new();
    for &s in scores {
        e.record(s);
    }
    e.win_rate()
}

/// Mean of a score slice; 0.0 when empty.
pub fn average_score(scores: &[f64]) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().sum::<f64>() / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_uses_paper_tie_band() {
        assert_eq!(Verdict::from_score(0.31), Verdict::Win);
        assert_eq!(Verdict::from_score(0.3), Verdict::Tie);
        assert_eq!(Verdict::from_score(-0.3), Verdict::Tie);
        assert_eq!(Verdict::from_score(-0.31), Verdict::Loss);
        assert_eq!(Verdict::from_score(0.0), Verdict::Tie);
    }

    #[test]
    fn win_rate_formula_matches_paper() {
        // 2 wins, 1 tie, 1 loss: (2 + 0.5) / 4.
        let wr = win_rate(&[1.0, 2.0, 0.0, -1.0]);
        assert!((wr - 0.625).abs() < 1e-12);
    }

    #[test]
    fn parity_means_half() {
        let mut e = PairwiseEval::new();
        e.record(1.0);
        e.record(-1.0);
        assert_eq!(e.win_rate(), 0.5);
        assert_eq!(e.average_score(), 0.0);
    }

    #[test]
    fn empty_defaults_are_neutral() {
        let e = PairwiseEval::new();
        assert_eq!(e.win_rate(), 0.5);
        assert_eq!(e.average_score(), 0.0);
        assert_eq!(e.total(), 0);
        assert_eq!(average_score(&[]), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = PairwiseEval::new();
        a.record(1.0);
        let mut b = PairwiseEval::new();
        b.record(-1.0);
        b.record(0.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts(), (1, 1, 1));
        assert_eq!(a.win_rate(), 0.5);
    }

    #[test]
    fn average_score_tracks_sum() {
        let mut e = PairwiseEval::new();
        for s in [3.0, -1.0, 1.0] {
            e.record(s);
        }
        assert!((e.average_score() - 1.0).abs() < 1e-12);
    }
}
