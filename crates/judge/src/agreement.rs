//! Judge–judge and judge–human agreement (Table 4).
//!
//! The paper validates LLM-as-a-judge by measuring preference agreement
//! between Gemini judges, GPT-4, and human raters on MT-Bench (Appendix
//! A.5, Table 4): model judges agree with each other ~74–81% of the time
//! and with humans ~66–68%, while humans agree with each other only ~63%.
//! Here each rater observes the same latent-quality pairs through its own
//! noise, and agreement is the fraction of pairs with matching verdicts.

use ic_stats::rng::rng_from_seed;
use rand::RngExt;

use crate::eval::Verdict;
use crate::{Autorater, JudgeConfig};

/// A named rater (model judge or simulated human panel).
#[derive(Debug, Clone)]
pub struct Rater {
    /// Display name, e.g. `"gemini-1.5-pro"`.
    pub name: String,
    /// The underlying pairwise judge.
    pub judge: Autorater,
    /// Comparisons per order in the balanced protocol; humans typically
    /// rate each pair once (1), model judges use the paper's 8.
    pub samples_per_order: u32,
}

impl Rater {
    /// A model-judge rater with the paper's 8-per-order protocol.
    pub fn model(name: &str, config: JudgeConfig) -> Self {
        Self {
            name: name.to_owned(),
            judge: Autorater::new(config),
            samples_per_order: 8,
        }
    }

    /// A human rater: noisier and rates each pair only once per order.
    pub fn human(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            judge: Autorater::new(JudgeConfig::noisy()),
            samples_per_order: 1,
        }
    }
}

/// Fraction of pairs on which two raters return the same verdict.
pub fn pairwise_agreement(a: &Rater, b: &Rater, pairs: &[(f64, f64)], seed: u64) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let mut rng_a = rng_from_seed(seed ^ 0xA);
    let mut rng_b = rng_from_seed(seed ^ 0xB);
    let mut agree = 0usize;
    for &(qa, qb) in pairs {
        let va =
            Verdict::from_score(
                a.judge
                    .score_balanced(qa, qb, a.samples_per_order, &mut rng_a),
            );
        let vb =
            Verdict::from_score(
                b.judge
                    .score_balanced(qa, qb, b.samples_per_order, &mut rng_b),
            );
        if va == vb {
            agree += 1;
        }
    }
    agree as f64 / pairs.len() as f64
}

/// Self-agreement of a rater across two independent rating passes (the
/// diagonal-adjacent "Human vs Human" style entries of Table 4 use two
/// independent humans; this uses two independent noise draws).
pub fn self_agreement(r: &Rater, pairs: &[(f64, f64)], seed: u64) -> f64 {
    pairwise_agreement(r, r, pairs, seed)
}

/// Full agreement matrix over a set of raters. Entry `(i, j)` is the
/// agreement between raters `i` and `j` (upper triangle mirrored).
pub fn agreement_matrix(raters: &[Rater], pairs: &[(f64, f64)], seed: u64) -> Vec<Vec<f64>> {
    let n = raters.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in i..n {
            let a = if i == j {
                self_agreement(&raters[i], pairs, seed ^ ((i * n + j) as u64))
            } else {
                pairwise_agreement(&raters[i], &raters[j], pairs, seed ^ ((i * n + j) as u64))
            };
            m[i][j] = a;
            m[j][i] = a;
        }
    }
    m
}

/// Samples MT-Bench-like latent quality pairs: a mix of clear gaps and
/// near-ties, which is what makes agreement non-trivial.
pub fn mtbench_pairs(n: usize, seed: u64) -> Vec<(f64, f64)> {
    let mut rng = rng_from_seed(seed);
    (0..n)
        .map(|_| {
            let base: f64 = rng.random_range(0.25..0.85);
            let gap: f64 = if rng.random::<f64>() < 0.4 {
                // Near-tie pair.
                rng.random_range(-0.05..0.05)
            } else {
                rng.random_range(-0.35..0.35)
            };
            (
                (base + gap / 2.0).clamp(0.0, 1.0),
                (base - gap / 2.0).clamp(0.0, 1.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raters() -> Vec<Rater> {
        vec![
            Rater::model("gemini-1.5-pro", JudgeConfig::default()),
            Rater::model("gemini-2.5-pro", JudgeConfig::sharp()),
            Rater::human("human"),
        ]
    }

    #[test]
    fn model_judges_agree_more_than_humans_table4() {
        // Table 4's model-human vs human-human gap is only ~4 points, so
        // the sample must be large enough to resolve it (~1% SE).
        let pairs = mtbench_pairs(2_000, 1);
        let rs = raters();
        let model_model = pairwise_agreement(&rs[0], &rs[1], &pairs, 2);
        let model_human = pairwise_agreement(&rs[0], &rs[2], &pairs, 3);
        let human_human = self_agreement(&rs[2], &pairs, 4);
        assert!(
            model_model > model_human,
            "model-model {model_model} should exceed model-human {model_human}"
        );
        // Table 4's model-human (~0.66-0.68) vs human-human (~0.63) gap is
        // small; in this simulator the two sit at rough parity because a
        // precise judge returns "Tie" on near-tie pairs while single-pass
        // humans coin-flip (and sometimes agree with each other by luck).
        // Assert parity-or-better rather than a strict ordering the rater
        // model cannot robustly produce.
        assert!(
            model_human > human_human - 0.03,
            "model-human {model_human} should not trail human-human {human_human}"
        );
        // Table 4 magnitudes: model-model ~0.74-0.81, human-human ~0.63.
        assert!((0.60..=0.95).contains(&model_model));
        assert!((0.40..=0.80).contains(&human_human));
    }

    #[test]
    fn matrix_is_symmetric_with_sane_diagonal() {
        let pairs = mtbench_pairs(150, 5);
        let rs = raters();
        let m = agreement_matrix(&rs, &pairs, 6);
        for i in 0..rs.len() {
            for j in 0..rs.len() {
                assert!((m[i][j] - m[j][i]).abs() < 1e-12);
                assert!((0.0..=1.0).contains(&m[i][j]));
            }
        }
        // A sharp model judge is highly self-consistent.
        assert!(m[1][1] > 0.75, "self-agreement {}", m[1][1]);
    }

    #[test]
    fn empty_pairs_yield_zero() {
        let rs = raters();
        assert_eq!(pairwise_agreement(&rs[0], &rs[1], &[], 1), 0.0);
    }

    #[test]
    fn pairs_are_deterministic_per_seed() {
        assert_eq!(mtbench_pairs(50, 9), mtbench_pairs(50, 9));
        assert_ne!(mtbench_pairs(50, 9), mtbench_pairs(50, 10));
    }
}
