//! LLM-as-a-judge autorater simulation.
//!
//! The paper evaluates response quality with the LLM-as-a-judge framework
//! (§2.1, §6.1): an expert model compares two responses side-by-side and
//! emits a seven-point Likert score in `{-3..3}`, where a mean score within
//! `[-0.3, 0.3]` counts as a tie, and win rate is
//! `(#wins + 0.5 * #ties) / #total`. To reduce order bias, each pair is
//! sampled eight times per input order (16 comparisons, §6.1).
//!
//! Here a judge observes the *latent* qualities of two responses through
//! noise and a position bias, then maps the perceived gap onto the Likert
//! scale. Judge noise levels are calibrated so that the judge–judge and
//! judge–human agreement rates reproduce Table 4 (`tab04_judges`).
//!
//! # Examples
//!
//! ```
//! use ic_judge::{Autorater, JudgeConfig};
//! use ic_stats::rng::rng_from_seed;
//!
//! let judge = Autorater::new(JudgeConfig::default());
//! let mut rng = rng_from_seed(1);
//! // Model A is clearly better: expect a positive mean score.
//! let score = judge.score_balanced(0.9, 0.4, 8, &mut rng);
//! assert!(score > 1.0);
//! ```

pub mod agreement;
pub mod eval;

pub use agreement::{Rater, agreement_matrix, pairwise_agreement};
pub use eval::{PairwiseEval, Verdict, average_score, win_rate};

use ic_stats::dist::Normal;
use rand::Rng;

/// The paper's tie band: a mean score within `[-0.3, 0.3]` is a tie (§6.1).
pub const TIE_BAND: f64 = 0.3;

/// Configuration of one autorater.
#[derive(Debug, Clone)]
pub struct JudgeConfig {
    /// Standard deviation of the noise on the perceived quality gap.
    pub noise: f64,
    /// Additive bias toward the first-listed response (position bias that
    /// balanced sampling cancels out).
    pub order_bias: f64,
    /// Perceived-gap thresholds for scores 1, 2 and 3.
    pub thresholds: [f64; 3],
}

impl Default for JudgeConfig {
    fn default() -> Self {
        Self {
            noise: 0.10,
            order_bias: 0.03,
            thresholds: [0.04, 0.13, 0.28],
        }
    }
}

impl JudgeConfig {
    /// A sharper judge (Gemini-2.5-Pro-class in Table 4).
    pub fn sharp() -> Self {
        Self {
            noise: 0.08,
            ..Self::default()
        }
    }

    /// A noisier judge (human-rater-class agreement in Table 4).
    pub fn noisy() -> Self {
        Self {
            noise: 0.22,
            order_bias: 0.05,
            ..Self::default()
        }
    }
}

/// A pairwise quality judge.
#[derive(Debug, Clone)]
pub struct Autorater {
    config: JudgeConfig,
}

impl Autorater {
    /// Creates a judge.
    pub fn new(config: JudgeConfig) -> Self {
        Self { config }
    }

    /// The default-calibrated judge used across the experiments.
    pub fn standard() -> Self {
        Self::new(JudgeConfig::default())
    }

    /// The configuration.
    pub fn config(&self) -> &JudgeConfig {
        &self.config
    }

    /// One order-sensitive comparison: response A (listed first, latent
    /// quality `q_a`) versus response B. Returns a Likert score in
    /// `{-3..3}`; positive favours A.
    pub fn score_pair(&self, q_a: f64, q_b: f64, rng: &mut impl Rng) -> i8 {
        let noise = Normal::new(0.0, self.config.noise)
            .expect("valid noise")
            .sample(rng);
        let perceived = (q_a - q_b) + self.config.order_bias + noise;
        let sign = if perceived >= 0.0 { 1i8 } else { -1i8 };
        let mag = perceived.abs();
        let [t1, t2, t3] = self.config.thresholds;
        let level = if mag < t1 {
            0
        } else if mag < t2 {
            1
        } else if mag < t3 {
            2
        } else {
            3
        };
        sign * level
    }

    /// The paper's balanced protocol: `samples_per_order` comparisons in
    /// each presentation order (§6.1 uses 8, i.e. 16 total), returning the
    /// mean score from A's perspective. Order bias cancels in expectation.
    pub fn score_balanced(
        &self,
        q_a: f64,
        q_b: f64,
        samples_per_order: u32,
        rng: &mut impl Rng,
    ) -> f64 {
        assert!(samples_per_order > 0, "need at least one sample per order");
        let mut sum = 0.0;
        for _ in 0..samples_per_order {
            sum += f64::from(self.score_pair(q_a, q_b, rng));
            // Flipped order: negate to recover A's perspective.
            sum -= f64::from(self.score_pair(q_b, q_a, rng));
        }
        sum / (2.0 * f64::from(samples_per_order))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_stats::RunningStats;
    use ic_stats::rng::rng_from_seed;

    #[test]
    fn equal_quality_scores_near_zero() {
        let judge = Autorater::standard();
        let mut rng = rng_from_seed(1);
        let mut s = RunningStats::new();
        for _ in 0..500 {
            s.push(judge.score_balanced(0.7, 0.7, 8, &mut rng));
        }
        assert!(s.mean().abs() < 0.1, "mean {}", s.mean());
    }

    #[test]
    fn larger_gap_gives_larger_score() {
        let judge = Autorater::standard();
        let mut rng = rng_from_seed(2);
        let small_gap = judge.score_balanced(0.65, 0.60, 64, &mut rng);
        let big_gap = judge.score_balanced(0.95, 0.40, 64, &mut rng);
        assert!(big_gap > small_gap);
        assert!(big_gap > 2.0);
    }

    #[test]
    fn scores_are_antisymmetric_in_expectation() {
        let judge = Autorater::standard();
        let mut rng = rng_from_seed(3);
        let mut fwd = RunningStats::new();
        let mut rev = RunningStats::new();
        for _ in 0..400 {
            fwd.push(judge.score_balanced(0.8, 0.5, 8, &mut rng));
            rev.push(judge.score_balanced(0.5, 0.8, 8, &mut rng));
        }
        assert!((fwd.mean() + rev.mean()).abs() < 0.1);
    }

    #[test]
    fn single_order_comparison_shows_position_bias() {
        // With identical qualities, the first position should win slightly
        // more often than it loses under a single-order protocol — the bias
        // that §6.1's balanced sampling exists to cancel.
        let judge = Autorater::new(JudgeConfig {
            order_bias: 0.08,
            ..JudgeConfig::default()
        });
        let mut rng = rng_from_seed(4);
        let mut sum = 0i64;
        for _ in 0..4000 {
            sum += i64::from(judge.score_pair(0.7, 0.7, &mut rng));
        }
        assert!(sum > 200, "expected positive bias, got {sum}");
    }

    #[test]
    fn scores_stay_in_likert_range() {
        let judge = Autorater::new(JudgeConfig::noisy());
        let mut rng = rng_from_seed(5);
        for _ in 0..2000 {
            let s = judge.score_pair(1.0, 0.0, &mut rng);
            assert!((-3..=3).contains(&s));
        }
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_samples_rejected() {
        let judge = Autorater::standard();
        let mut rng = rng_from_seed(6);
        let _ = judge.score_balanced(0.5, 0.5, 0, &mut rng);
    }
}
