//! Paged KV-cache memory model for the serving simulator.
//!
//! Slot count is not the real capacity constraint of an LLM serving
//! replica — KV-cache memory is. vLLM's PagedAttention made this the
//! organizing principle of modern engines: a sequence's KV cache is
//! stored in fixed-size **blocks** drawn from a bounded per-replica
//! pool, sequences grow block by block as they prefill and decode, and
//! the scheduler preempts (swaps out) running sequences when a step's
//! token growth cannot be served from free blocks. This crate models
//! exactly that layer, deterministically, for `ic-serving`'s
//! iteration-level scheduler:
//!
//! - [`KvBudget`] — one replica's block pool: a LIFO free list over
//!   `budget_blocks` physical blocks with strict alloc/free accounting
//!   (double frees panic, leaks are visible as non-zero `used()`).
//! - [`BlockPool`] — the pool-wide view: one [`KvBudget`] per replica,
//!   block-granular [`KvStats`] (peak/mean occupancy, fragmentation,
//!   swap counts), and placement (least-loaded replica first).
//! - [`PressurePolicy`] — high/low watermarks plus a configurable
//!   swap-vs-recompute cost model ([`SwapModel`], wrapped with host
//!   capacity in [`KvSwap`]): the high watermark gates new admissions,
//!   allocation failure triggers victim preemption (longest remaining
//!   decode first, chosen by the caller), and swapped sequences resume
//!   only once occupancy drains below the low watermark. The policy
//!   prices swap-out and resume penalties in simulated seconds so the
//!   scheduler can charge them to the step clock. Swapped-out blocks
//!   occupy a host-side (CPU) ledger capped by
//!   `KvSwap::host_capacity_blocks`; victims that overflow it are
//!   evicted recompute-priced instead (vLLM's bounded `swap_space`).
//!
//! # Shared-prefix reuse
//!
//! On top of the private allocator sits an opt-in sharing layer
//! (`docs/kv-sharing.md` holds the full contract). Its pieces:
//!
//! - **Refcounted physical blocks.** [`KvBudget`] tracks a reference
//!   count per block — `1` private, `>= 2` shared. `KvBudget::incref`
//!   adds a reference; `KvBudget::free_block` drops one and returns
//!   the block to the free list only at zero (and still panics on a
//!   free past zero). With every count at 1 the budget behaves
//!   bit-for-bit like the plain allocator, which is what keeps the
//!   share-off engine byte-identical to the pre-sharing golden.
//! - **A hash-consed content table.** [`BlockPool`] maps
//!   `(example-set id, prefill chunk index)` to the [`BlockId`]
//!   holding that chunk's KV. `BlockPool::register_prefix` installs a
//!   pristine prefill block (first writer wins),
//!   `BlockPool::lookup_prefix` finds a still-resident chunk, and
//!   `BlockPool::map_shared` takes a reference on it (counted in
//!   [`KvStats::blocks_saved`]). Entries hold **no reference of their
//!   own**: they die when the block is physically freed, so the table
//!   never pins memory and sharing happens only between sequences that
//!   are resident at the same time.
//! - **Copy-on-write divergence.** The first write past the shared
//!   prefix goes through `BlockPool::diverge`, which returns a
//!   [`Divergence`]: `InPlace` for a sole holder (the block is simply
//!   unregistered), `Copied(fresh)` for a shared block (a private
//!   replacement is allocated and the writer's reference moves to it,
//!   counted in [`KvStats::cow_copies`]), or `None` when the replica
//!   has no free block for the copy — the caller defers and retries
//!   after the next pressure round.
//!
//! The sharing verbs preserve the conservation law the private
//! allocator already had — `allocs == frees` at drain, refcount equals
//! the number of holders at every step — which
//! `crates/kvmem/tests/conservation.rs` checks by property test over
//! arbitrary interleavings of alloc/share/diverge/release.
//!
//! The crate is dependency-free and purely arithmetical: every
//! operation is deterministic, so the serving layer's byte-identical
//! replay guarantees extend to memory pressure events.
//!
//! # Example
//!
//! ```
//! use ic_kvmem::{BlockPool, PressurePolicy, Watermarks};
//!
//! // 2 replicas x 8 blocks of 16 tokens.
//! let mut pool = BlockPool::new(2, 8, 16);
//! let replica = pool.least_loaded_replica();
//! let blocks = pool.try_alloc(replica, pool.blocks_for(40)).unwrap();
//! assert_eq!(blocks.len(), 3); // ceil(40 / 16)
//! assert_eq!(pool.used_blocks(), 3);
//!
//! let policy = PressurePolicy::new(Watermarks::new(0.9, 0.7));
//! assert!(!policy.under_pressure(pool.occupancy()));
//! pool.free(blocks);
//! assert_eq!(pool.used_blocks(), 0);
//! ```

pub mod block;
pub mod pressure;

pub use block::{BlockId, BlockPool, Divergence, KvBudget, KvStats};
pub use pressure::{KvSwap, PressurePolicy, SwapModel, Watermarks};
