//! Watermark-driven pressure policy and the swap-vs-recompute cost
//! model.

/// High/low occupancy watermarks over a block budget, as fractions of
/// the total block capacity.
///
/// - At or above `high`, the pool stops admitting new sequences (their
///   projected prefill demand would push memory into the thrash zone).
/// - Below `low`, swapped-out sequences are resumed (memory has
///   drained enough that bringing KV state back will not immediately
///   re-trigger pressure).
///
/// `high == low == 1.0` degenerates to "preempt only on hard
/// allocation failure, resume whenever any block is free" — the
/// laziest legal policy, exercised by the edge-case tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watermarks {
    /// Admission gate: no new sequences at or above this occupancy.
    pub high: f64,
    /// Resume gate: swapped sequences return below this occupancy.
    pub low: f64,
}

impl Watermarks {
    /// The default gate pair used by `PoolConfig::for_gpus`.
    pub const DEFAULT: Watermarks = Watermarks {
        high: 0.9,
        low: 0.7,
    };

    /// Builds a watermark pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low <= high <= 1`.
    pub fn new(high: f64, low: f64) -> Self {
        assert!(
            low > 0.0 && low <= high && high <= 1.0,
            "watermarks must satisfy 0 < low <= high <= 1, got high={high} low={low}"
        );
        Self { high, low }
    }
}

impl Default for Watermarks {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// What a pressure preemption costs in simulated seconds: either the
/// KV blocks are swapped to host memory and back (cost proportional to
/// blocks moved, both directions), or they are dropped and the prefix
/// is recomputed at resume (cost proportional to the tokens whose KV
/// must be rebuilt, nothing at swap-out). This is the classic
/// vLLM swap-vs-recompute trade: recompute is cheaper for short
/// sequences and fast prefill, swapping for long sequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapModel {
    /// Copy blocks out to host memory and back in on resume.
    Swap {
        /// Seconds per block swapped out (GPU -> host).
        out_secs_per_block: f64,
        /// Seconds per block swapped in (host -> GPU).
        in_secs_per_block: f64,
    },
    /// Drop the KV state and rebuild it by re-running prefill over the
    /// materialized tokens at resume time.
    Recompute {
        /// Seconds per token of KV state recomputed at resume.
        secs_per_token: f64,
    },
}

impl SwapModel {
    /// The default cost model: PCIe-ish block copies in both
    /// directions.
    pub const DEFAULT: SwapModel = SwapModel::Swap {
        out_secs_per_block: 5e-4,
        in_secs_per_block: 5e-4,
    };
}

impl Default for SwapModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// The full swap configuration: the pricing model plus the CPU-side
/// (host) capacity that swapped-out KV blocks actually occupy.
///
/// Real engines do not get free host memory: vLLM's `swap_space` caps
/// how many blocks can be parked in CPU RAM, and a victim that does not
/// fit must drop its KV state and rebuild it by recompute at resume.
/// `host_capacity_blocks` models that cap; `0` means unbounded (the
/// historical behaviour, and the default so existing replays are
/// unchanged). Victims that overflow the cap are evicted
/// recompute-priced: the swap-out is free (state is dropped) and resume
/// charges [`KvSwap::overflow_recompute_secs_per_token`] per
/// materialized KV token instead of the swap-in price.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvSwap {
    /// Pricing for victims that fit in host memory (or for the pure
    /// recompute policy, which never touches host memory).
    pub model: SwapModel,
    /// Host blocks available to park swapped-out KV state; `0` is
    /// unbounded.
    pub host_capacity_blocks: u32,
    /// Recompute price (seconds per KV token rebuilt at resume) for
    /// victims evicted while host space is exhausted.
    pub overflow_recompute_secs_per_token: f64,
}

impl KvSwap {
    /// Default configuration: the default [`SwapModel`], unbounded host
    /// space, and a prefill-rate-ish overflow recompute price.
    pub const DEFAULT: KvSwap = KvSwap {
        model: SwapModel::DEFAULT,
        host_capacity_blocks: 0,
        overflow_recompute_secs_per_token: 2e-5,
    };

    /// Wraps a pricing model with unbounded host capacity.
    pub const fn unbounded(model: SwapModel) -> Self {
        Self {
            model,
            ..Self::DEFAULT
        }
    }
}

impl Default for KvSwap {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl From<SwapModel> for KvSwap {
    fn from(model: SwapModel) -> Self {
        Self::unbounded(model)
    }
}

/// The pressure policy: watermark gates plus the swap cost model. The
/// scheduler owns victim *selection* (it has the sequence state); the
/// policy owns the *gates* and the *prices*.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PressurePolicy {
    /// Admission / resume gates.
    pub watermarks: Watermarks,
    /// Swap-vs-recompute pricing plus host-side swap capacity.
    pub swap: KvSwap,
}

impl PressurePolicy {
    /// A policy with the given watermarks and the default cost model.
    pub fn new(watermarks: Watermarks) -> Self {
        Self {
            watermarks,
            swap: KvSwap::default(),
        }
    }

    /// Whether occupancy is at or above the high watermark (admission
    /// closed).
    pub fn under_pressure(&self, occupancy: f64) -> bool {
        occupancy >= self.watermarks.high
    }

    /// Whether occupancy has drained below the low watermark (swapped
    /// sequences may resume).
    pub fn can_resume(&self, occupancy: f64) -> bool {
        occupancy < self.watermarks.low
    }

    /// Seconds charged at the boundary where a victim's `blocks` are
    /// swapped out to host memory (zero under recompute: dropping state
    /// is free).
    pub fn swap_out_penalty(&self, blocks: u32) -> f64 {
        match self.swap.model {
            SwapModel::Swap {
                out_secs_per_block, ..
            } => out_secs_per_block * f64::from(blocks),
            SwapModel::Recompute { .. } => 0.0,
        }
    }

    /// Seconds charged at the boundary where a victim resumes:
    /// swapping `blocks` back in, or recomputing `kv_tokens` of
    /// dropped state.
    pub fn resume_penalty(&self, blocks: u32, kv_tokens: u64) -> f64 {
        match self.swap.model {
            SwapModel::Swap {
                in_secs_per_block, ..
            } => in_secs_per_block * f64::from(blocks),
            SwapModel::Recompute { secs_per_token } => secs_per_token * kv_tokens as f64,
        }
    }

    /// Whether swap-outs should try to park blocks in host memory at
    /// all (only the `Swap` pricing model holds host state; recompute
    /// drops it by definition).
    pub fn parks_on_host(&self) -> bool {
        matches!(self.swap.model, SwapModel::Swap { .. })
    }

    /// Seconds charged when a victim that overflowed host capacity
    /// resumes: its state was dropped, so `kv_tokens` of KV entries are
    /// rebuilt at the overflow recompute rate.
    pub fn overflow_resume_penalty(&self, kv_tokens: u64) -> f64 {
        self.swap.overflow_recompute_secs_per_token * kv_tokens as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_follow_the_watermarks() {
        let p = PressurePolicy::new(Watermarks::new(0.9, 0.7));
        assert!(!p.under_pressure(0.89));
        assert!(p.under_pressure(0.9));
        assert!(p.can_resume(0.69));
        assert!(!p.can_resume(0.7));
    }

    #[test]
    fn watermarks_equal_to_budget_are_legal() {
        let p = PressurePolicy::new(Watermarks::new(1.0, 1.0));
        assert!(!p.under_pressure(0.999), "admission open until full");
        assert!(p.under_pressure(1.0));
        assert!(p.can_resume(0.999), "resume whenever any block is free");
    }

    #[test]
    #[should_panic(expected = "watermarks must satisfy")]
    fn inverted_watermarks_panic() {
        let _ = Watermarks::new(0.5, 0.8);
    }

    #[test]
    fn swap_model_prices_both_directions() {
        let p = PressurePolicy {
            watermarks: Watermarks::DEFAULT,
            swap: KvSwap::unbounded(SwapModel::Swap {
                out_secs_per_block: 1e-3,
                in_secs_per_block: 2e-3,
            }),
        };
        assert!((p.swap_out_penalty(10) - 0.01).abs() < 1e-12);
        assert!((p.resume_penalty(10, 999) - 0.02).abs() < 1e-12);
        assert!(p.parks_on_host(), "block swaps hold host memory");
    }

    #[test]
    fn recompute_model_prices_tokens_at_resume_only() {
        let p = PressurePolicy {
            watermarks: Watermarks::DEFAULT,
            swap: KvSwap::unbounded(SwapModel::Recompute {
                secs_per_token: 1e-4,
            }),
        };
        assert_eq!(p.swap_out_penalty(10), 0.0, "dropping state is free");
        assert!((p.resume_penalty(10, 500) - 0.05).abs() < 1e-12);
        assert!(!p.parks_on_host(), "recompute never touches host memory");
    }

    #[test]
    fn overflow_resume_is_priced_per_token() {
        let p = PressurePolicy {
            watermarks: Watermarks::DEFAULT,
            swap: KvSwap {
                host_capacity_blocks: 4,
                overflow_recompute_secs_per_token: 1e-3,
                ..KvSwap::DEFAULT
            },
        };
        assert!((p.overflow_resume_penalty(250) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn kvswap_defaults_are_unbounded() {
        let swap = KvSwap::default();
        assert_eq!(swap.host_capacity_blocks, 0, "0 = unbounded host space");
        assert_eq!(swap.model, SwapModel::DEFAULT);
        let converted: KvSwap = SwapModel::Recompute {
            secs_per_token: 1e-4,
        }
        .into();
        assert_eq!(converted.host_capacity_blocks, 0);
    }
}
