//! Watermark-driven pressure policy and the swap-vs-recompute cost
//! model.

/// High/low occupancy watermarks over a block budget, as fractions of
/// the total block capacity.
///
/// - At or above `high`, the pool stops admitting new sequences (their
///   projected prefill demand would push memory into the thrash zone).
/// - Below `low`, swapped-out sequences are resumed (memory has
///   drained enough that bringing KV state back will not immediately
///   re-trigger pressure).
///
/// `high == low == 1.0` degenerates to "preempt only on hard
/// allocation failure, resume whenever any block is free" — the
/// laziest legal policy, exercised by the edge-case tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Watermarks {
    /// Admission gate: no new sequences at or above this occupancy.
    pub high: f64,
    /// Resume gate: swapped sequences return below this occupancy.
    pub low: f64,
}

impl Watermarks {
    /// The default gate pair used by `PoolConfig::for_gpus`.
    pub const DEFAULT: Watermarks = Watermarks {
        high: 0.9,
        low: 0.7,
    };

    /// Builds a watermark pair.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low <= high <= 1`.
    pub fn new(high: f64, low: f64) -> Self {
        assert!(
            low > 0.0 && low <= high && high <= 1.0,
            "watermarks must satisfy 0 < low <= high <= 1, got high={high} low={low}"
        );
        Self { high, low }
    }
}

impl Default for Watermarks {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// What a pressure preemption costs in simulated seconds: either the
/// KV blocks are swapped to host memory and back (cost proportional to
/// blocks moved, both directions), or they are dropped and the prefix
/// is recomputed at resume (cost proportional to the tokens whose KV
/// must be rebuilt, nothing at swap-out). This is the classic
/// vLLM swap-vs-recompute trade: recompute is cheaper for short
/// sequences and fast prefill, swapping for long sequences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwapModel {
    /// Copy blocks out to host memory and back in on resume.
    Swap {
        /// Seconds per block swapped out (GPU -> host).
        out_secs_per_block: f64,
        /// Seconds per block swapped in (host -> GPU).
        in_secs_per_block: f64,
    },
    /// Drop the KV state and rebuild it by re-running prefill over the
    /// materialized tokens at resume time.
    Recompute {
        /// Seconds per token of KV state recomputed at resume.
        secs_per_token: f64,
    },
}

impl SwapModel {
    /// The default cost model: PCIe-ish block copies in both
    /// directions.
    pub const DEFAULT: SwapModel = SwapModel::Swap {
        out_secs_per_block: 5e-4,
        in_secs_per_block: 5e-4,
    };
}

impl Default for SwapModel {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// The pressure policy: watermark gates plus the swap cost model. The
/// scheduler owns victim *selection* (it has the sequence state); the
/// policy owns the *gates* and the *prices*.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PressurePolicy {
    /// Admission / resume gates.
    pub watermarks: Watermarks,
    /// Swap-vs-recompute pricing.
    pub swap: SwapModel,
}

impl PressurePolicy {
    /// A policy with the given watermarks and the default cost model.
    pub fn new(watermarks: Watermarks) -> Self {
        Self {
            watermarks,
            swap: SwapModel::default(),
        }
    }

    /// Whether occupancy is at or above the high watermark (admission
    /// closed).
    pub fn under_pressure(&self, occupancy: f64) -> bool {
        occupancy >= self.watermarks.high
    }

    /// Whether occupancy has drained below the low watermark (swapped
    /// sequences may resume).
    pub fn can_resume(&self, occupancy: f64) -> bool {
        occupancy < self.watermarks.low
    }

    /// Seconds charged at the boundary where a victim's `blocks` are
    /// swapped out (zero under recompute: dropping state is free).
    pub fn swap_out_penalty(&self, blocks: u32) -> f64 {
        match self.swap {
            SwapModel::Swap {
                out_secs_per_block, ..
            } => out_secs_per_block * f64::from(blocks),
            SwapModel::Recompute { .. } => 0.0,
        }
    }

    /// Seconds charged at the boundary where a victim resumes:
    /// swapping `blocks` back in, or recomputing `kv_tokens` of
    /// dropped state.
    pub fn resume_penalty(&self, blocks: u32, kv_tokens: u64) -> f64 {
        match self.swap {
            SwapModel::Swap {
                in_secs_per_block, ..
            } => in_secs_per_block * f64::from(blocks),
            SwapModel::Recompute { secs_per_token } => secs_per_token * kv_tokens as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_follow_the_watermarks() {
        let p = PressurePolicy::new(Watermarks::new(0.9, 0.7));
        assert!(!p.under_pressure(0.89));
        assert!(p.under_pressure(0.9));
        assert!(p.can_resume(0.69));
        assert!(!p.can_resume(0.7));
    }

    #[test]
    fn watermarks_equal_to_budget_are_legal() {
        let p = PressurePolicy::new(Watermarks::new(1.0, 1.0));
        assert!(!p.under_pressure(0.999), "admission open until full");
        assert!(p.under_pressure(1.0));
        assert!(p.can_resume(0.999), "resume whenever any block is free");
    }

    #[test]
    #[should_panic(expected = "watermarks must satisfy")]
    fn inverted_watermarks_panic() {
        let _ = Watermarks::new(0.5, 0.8);
    }

    #[test]
    fn swap_model_prices_both_directions() {
        let p = PressurePolicy {
            watermarks: Watermarks::DEFAULT,
            swap: SwapModel::Swap {
                out_secs_per_block: 1e-3,
                in_secs_per_block: 2e-3,
            },
        };
        assert!((p.swap_out_penalty(10) - 0.01).abs() < 1e-12);
        assert!((p.resume_penalty(10, 999) - 0.02).abs() < 1e-12);
    }

    #[test]
    fn recompute_model_prices_tokens_at_resume_only() {
        let p = PressurePolicy {
            watermarks: Watermarks::DEFAULT,
            swap: SwapModel::Recompute {
                secs_per_token: 1e-4,
            },
        };
        assert_eq!(p.swap_out_penalty(10), 0.0, "dropping state is free");
        assert!((p.resume_penalty(10, 500) - 0.05).abs() < 1e-12);
    }
}
