//! The paged block allocator: per-replica budgets, refcounted sharing,
//! and pool-wide stats.

use std::collections::BTreeMap;

/// A physical KV block: `(replica, index)` within that replica's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Owning replica.
    pub replica: u32,
    /// Block index within the replica's budget.
    pub index: u32,
}

/// One replica's KV memory: a fixed budget of blocks with a LIFO free
/// list (freed blocks are reused first, like vLLM's block allocator),
/// a per-block reference count for shared-prefix mappings, and strict
/// accounting.
///
/// A freshly allocated block has refcount 1 (its allocator holds the
/// only reference). Additional sequences mapping the block through the
/// pool's content table take extra references ([`KvBudget::incref`]);
/// [`KvBudget::free_block`] drops one reference and returns the block
/// to the free list only when the count reaches zero. With no sharing
/// in play every count is 1 and the budget behaves bit-for-bit like a
/// plain allocator.
#[derive(Debug, Clone)]
pub struct KvBudget {
    replica: u32,
    /// Free block indices, popped from the back (LIFO reuse).
    free_list: Vec<u32>,
    /// Allocation bit per block: guards against double frees.
    allocated: Vec<bool>,
    /// References held per block (`0` while free, `1` for a private
    /// block, `>= 2` while shared between sequences).
    refcount: Vec<u32>,
}

impl KvBudget {
    /// A fresh budget of `budget_blocks` free blocks for `replica`.
    pub fn new(replica: u32, budget_blocks: u32) -> Self {
        Self {
            replica,
            // Reverse order so the first pop is block 0 (cosmetic, but
            // keeps allocation traces easy to read).
            free_list: (0..budget_blocks).rev().collect(),
            allocated: vec![false; budget_blocks as usize],
            refcount: vec![0; budget_blocks as usize],
        }
    }

    /// Total blocks in the budget.
    pub fn budget(&self) -> u32 {
        self.allocated.len() as u32
    }

    /// Blocks currently free.
    pub fn free(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// Blocks currently allocated.
    pub fn used(&self) -> u32 {
        self.budget() - self.free()
    }

    /// Allocates `n` blocks (each at refcount 1), or `None` (and no
    /// change) if fewer are free. Freed blocks are reused LIFO.
    pub fn try_alloc(&mut self, n: u32) -> Option<Vec<BlockId>> {
        if self.free() < n {
            return None;
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let index = self.free_list.pop().expect("free count checked");
            debug_assert!(!self.allocated[index as usize], "free list corrupt");
            self.allocated[index as usize] = true;
            self.refcount[index as usize] = 1;
            out.push(BlockId {
                replica: self.replica,
                index,
            });
        }
        Some(out)
    }

    /// Takes an extra reference on an allocated block (a shared-prefix
    /// mapping). Returns the new count.
    ///
    /// # Panics
    ///
    /// Panics when the block is free or foreign — mapping a block
    /// nobody holds is a sharing-layer bug.
    pub fn incref(&mut self, block: BlockId) -> u32 {
        assert_eq!(block.replica, self.replica, "incref on wrong replica");
        assert!(
            self.allocated[block.index as usize],
            "incref of free {block:?}"
        );
        self.refcount[block.index as usize] += 1;
        self.refcount[block.index as usize]
    }

    /// References currently held on a block (`0` while free).
    pub fn refcount(&self, block: BlockId) -> u32 {
        self.refcount[block.index as usize]
    }

    /// Drops one reference; at zero the block returns to the free list.
    /// Returns `true` when the block was physically freed.
    ///
    /// # Panics
    ///
    /// Panics on a double free (releasing a block already free) or a
    /// foreign block — both are allocator bugs the conservation tests
    /// must surface, never mask.
    pub fn free_block(&mut self, block: BlockId) -> bool {
        assert_eq!(block.replica, self.replica, "block freed to wrong replica");
        let slot = &mut self.allocated[block.index as usize];
        assert!(*slot, "double free of {block:?}");
        let rc = &mut self.refcount[block.index as usize];
        debug_assert!(*rc > 0, "allocated block with zero refcount");
        *rc -= 1;
        if *rc > 0 {
            return false;
        }
        *slot = false;
        self.free_list.push(block.index);
        true
    }
}

/// Pool-wide KV memory counters, merged across pools for reports. All
/// counters are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KvStats {
    /// Steps sampled (one per scheduler iteration).
    pub steps: u64,
    /// Sum over sampled steps of blocks in use.
    pub block_steps: u64,
    /// Sum over sampled steps of the block capacity (`steps x
    /// total_blocks` for a single pool; additive across pools).
    pub capacity_steps: u64,
    /// Peak blocks in use (summed across pools when merged, so the
    /// merged value is an upper bound on the true simultaneous peak).
    pub peak_blocks: u64,
    /// Total block capacity across replicas (additive across pools).
    pub total_blocks: u64,
    /// Blocks handed out by the allocator.
    pub allocs: u64,
    /// Blocks returned to the allocator.
    pub frees: u64,
    /// Sequences preempted by memory pressure (allocation failure), as
    /// opposed to slot-demand quantum preemption.
    pub pressure_preemptions: u64,
    /// Sequences swapped out (their blocks freed to the pool).
    pub swap_outs: u64,
    /// Sequences swapped back in (blocks re-allocated).
    pub swap_ins: u64,
    /// Sum over sampled steps of KV tokens materialized in allocated
    /// blocks (fragmentation numerator; see
    /// [`KvStats::fragmentation_ratio`]).
    pub used_token_steps: u64,
    /// Sum over sampled steps of token capacity of allocated blocks
    /// (`blocks x block_tokens`).
    pub alloc_token_steps: u64,
    /// Peak blocks parked in host (CPU) memory by swapped-out victims
    /// (summed across pools when merged).
    pub host_peak_blocks: u64,
    /// Victims evicted recompute-priced because host swap space was
    /// exhausted (see `KvSwap::host_capacity_blocks`).
    pub recompute_fallbacks: u64,
    /// Logical blocks served by mapping an existing shared-prefix block
    /// from the content table instead of allocating a fresh one — the
    /// dedup numerator (each map is one block of KV memory *not* spent).
    pub blocks_saved: u64,
    /// Peak simultaneous physical blocks shared between two or more
    /// sequences (refcount >= 2; summed across pools when merged, so the
    /// merged value is an upper bound on the true simultaneous peak).
    pub shared_blocks_peak: u64,
    /// Copy-on-write divergences: private replacement blocks allocated
    /// when a sequence wrote past its shared prefix into a block other
    /// sequences still read.
    pub cow_copies: u64,
}

impl KvStats {
    /// Mean fraction of the block budget in use over sampled steps.
    pub fn mean_occupancy(&self) -> f64 {
        if self.capacity_steps == 0 {
            0.0
        } else {
            self.block_steps as f64 / self.capacity_steps as f64
        }
    }

    /// Peak fraction of the block budget in use.
    pub fn peak_occupancy(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.peak_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Mean internal fragmentation of allocated blocks: the fraction of
    /// allocated token capacity holding no KV entries (last-block slack
    /// plus admission-time prefill preallocation).
    pub fn fragmentation_ratio(&self) -> f64 {
        if self.alloc_token_steps == 0 {
            0.0
        } else {
            1.0 - (self.used_token_steps.min(self.alloc_token_steps) as f64
                / self.alloc_token_steps as f64)
        }
    }

    /// Fraction of logical block demand served by shared-prefix
    /// mappings instead of fresh allocations:
    /// `blocks_saved / (blocks_saved + allocs)`. `0` with sharing off
    /// (or when no prefix ever hit the content table).
    pub fn dedup_ratio(&self) -> f64 {
        let demand = self.blocks_saved + self.allocs;
        if demand == 0 {
            0.0
        } else {
            self.blocks_saved as f64 / demand as f64
        }
    }

    /// Accumulates another pool's counters into this one.
    pub fn merge(&mut self, other: &KvStats) {
        self.steps += other.steps;
        self.block_steps += other.block_steps;
        self.capacity_steps += other.capacity_steps;
        self.peak_blocks += other.peak_blocks;
        self.total_blocks += other.total_blocks;
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.pressure_preemptions += other.pressure_preemptions;
        self.swap_outs += other.swap_outs;
        self.swap_ins += other.swap_ins;
        self.used_token_steps += other.used_token_steps;
        self.alloc_token_steps += other.alloc_token_steps;
        self.host_peak_blocks += other.host_peak_blocks;
        self.recompute_fallbacks += other.recompute_fallbacks;
        self.blocks_saved += other.blocks_saved;
        self.shared_blocks_peak += other.shared_blocks_peak;
        self.cow_copies += other.cow_copies;
    }
}

/// What [`BlockPool::diverge`] did about a write into a shared-prefix
/// block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Divergence {
    /// The writer held the only reference: the block was unregistered
    /// from the content table and the sequence keeps writing in place
    /// (no copy, no allocation).
    InPlace,
    /// Other sequences still read the block: a private replacement was
    /// allocated (copy-on-write) and the writer's reference on the
    /// shared block released. The caller must point its logical block
    /// table at the returned block.
    Copied(BlockId),
}

/// The pool-wide allocator: one [`KvBudget`] per replica plus counters,
/// the host-side (CPU) ledger swapped-out victims park blocks in, and
/// the hash-consing **content table** for shared prefill prefixes.
///
/// The content table maps `(example-set id, chunk index)` to the
/// physical block holding that chunk of the set's prefill KV state. It
/// holds **no reference of its own**: entries live exactly as long as
/// some sequence holds the block, and are removed the instant the last
/// reference drops (so the table can never pin memory). `BTreeMap`
/// keeps iteration deterministic.
#[derive(Debug, Clone)]
pub struct BlockPool {
    block_tokens: u32,
    replicas: Vec<KvBudget>,
    /// Host blocks available to swapped-out state; `0` is unbounded.
    host_capacity: u32,
    /// Host blocks currently parked by swapped-out sequences.
    host_used: u32,
    /// `(example-set id, prefill chunk index)` -> the physical block
    /// hash-consing that chunk's KV content.
    content: BTreeMap<(u64, u32), BlockId>,
    /// Reverse index of `content` so a block's table entry can be
    /// dropped in O(log n) when it is physically freed.
    registered: BTreeMap<BlockId, (u64, u32)>,
    /// Physical blocks currently shared (refcount >= 2); feeds
    /// `shared_blocks_peak`.
    shared_now: u32,
    stats: KvStats,
}

impl BlockPool {
    /// A pool of `replicas` budgets of `budget_blocks` blocks holding
    /// `block_tokens` tokens each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — a zero-size pool means "KV
    /// modeling off" and callers must not construct one.
    pub fn new(replicas: u32, budget_blocks: u32, block_tokens: u32) -> Self {
        assert!(replicas > 0, "at least one replica");
        assert!(budget_blocks > 0, "at least one block per replica");
        assert!(block_tokens > 0, "blocks must hold at least one token");
        Self {
            block_tokens,
            replicas: (0..replicas)
                .map(|r| KvBudget::new(r, budget_blocks))
                .collect(),
            host_capacity: 0,
            host_used: 0,
            content: BTreeMap::new(),
            registered: BTreeMap::new(),
            shared_now: 0,
            stats: KvStats {
                total_blocks: u64::from(replicas) * u64::from(budget_blocks),
                ..KvStats::default()
            },
        }
    }

    /// Caps the host (CPU) blocks swapped-out victims may park
    /// (`KvSwap::host_capacity_blocks`); `0` is unbounded.
    pub fn with_host_capacity(mut self, blocks: u32) -> Self {
        self.host_capacity = blocks;
        self
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Blocks per replica.
    pub fn budget_blocks(&self) -> u32 {
        self.replicas[0].budget()
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Blocks needed to hold `tokens` KV entries, capped at one
    /// replica's budget: a sequence longer than the whole replica runs
    /// with the full budget and windows its tail into the last block
    /// (so over-long jobs degrade instead of deadlocking admission).
    pub fn blocks_for(&self, tokens: u64) -> u32 {
        let raw = tokens.div_ceil(u64::from(self.block_tokens));
        (raw.min(u64::from(self.budget_blocks())).max(1)) as u32
    }

    /// Blocks in use across all replicas.
    pub fn used_blocks(&self) -> u32 {
        self.replicas.iter().map(KvBudget::used).sum()
    }

    /// Blocks free on one replica.
    pub fn free_blocks(&self, replica: usize) -> u32 {
        self.replicas[replica].free()
    }

    /// Pool-wide occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        f64::from(self.used_blocks()) / self.stats.total_blocks as f64
    }

    /// The replica with the most free blocks (lowest index on ties) —
    /// the deterministic placement rule for new sequences.
    pub fn least_loaded_replica(&self) -> usize {
        let mut best = 0usize;
        for (i, b) in self.replicas.iter().enumerate().skip(1) {
            if b.free() > self.replicas[best].free() {
                best = i;
            }
        }
        best
    }

    /// Allocates `n` blocks on `replica`, or `None` (and no change) if
    /// fewer are free.
    pub fn try_alloc(&mut self, replica: usize, n: u32) -> Option<Vec<BlockId>> {
        let blocks = self.replicas[replica].try_alloc(n)?;
        self.stats.allocs += u64::from(n);
        Some(blocks)
    }

    /// Releases one reference per block back to the owning replicas.
    ///
    /// Equivalent to [`BlockPool::release`] with the freed count
    /// discarded; with no sharing in play (every refcount 1) this is a
    /// plain free of every block.
    ///
    /// # Panics
    ///
    /// Panics on double frees (see [`KvBudget::free_block`]).
    pub fn free(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        self.release(blocks);
    }

    /// Releases one reference per block and returns how many blocks
    /// were **physically** freed (refcount reached zero). Blocks other
    /// sequences still reference stay resident; a freed block's content
    /// table entry (if any) is removed, so the table never outlives the
    /// memory it names.
    ///
    /// # Panics
    ///
    /// Panics on double frees (see [`KvBudget::free_block`]).
    pub fn release(&mut self, blocks: impl IntoIterator<Item = BlockId>) -> u32 {
        let mut freed = 0u32;
        for b in blocks {
            let budget = &mut self.replicas[b.replica as usize];
            if budget.refcount(b) == 2 {
                self.shared_now -= 1;
            }
            if budget.free_block(b) {
                if let Some(key) = self.registered.remove(&b) {
                    self.content.remove(&key);
                }
                self.stats.frees += 1;
                freed += 1;
            }
        }
        freed
    }

    /// References currently held on a block (`0` while free).
    pub fn refcount(&self, block: BlockId) -> u32 {
        self.replicas[block.replica as usize].refcount(block)
    }

    /// Whether a block backs a content-table entry.
    pub fn is_registered(&self, block: BlockId) -> bool {
        self.registered.contains_key(&block)
    }

    /// Physical blocks currently shared between sequences (refcount
    /// >= 2).
    pub fn shared_blocks(&self) -> u32 {
        self.shared_now
    }

    /// The block hash-consing prefill chunk `chunk` of example set
    /// `set`, if one is resident.
    pub fn lookup_prefix(&self, set: u64, chunk: u32) -> Option<BlockId> {
        self.content.get(&(set, chunk)).copied()
    }

    /// Registers an allocated block as the hash-consed home of `(set,
    /// chunk)`. First writer wins: an existing entry for the key, or an
    /// existing key for the block, leaves the table unchanged (returns
    /// `false`). The entry holds no reference — it dies with the block.
    pub fn register_prefix(&mut self, set: u64, chunk: u32, block: BlockId) -> bool {
        if self.content.contains_key(&(set, chunk)) || self.registered.contains_key(&block) {
            return false;
        }
        debug_assert!(
            self.replicas[block.replica as usize].refcount(block) > 0,
            "registering a free block"
        );
        self.content.insert((set, chunk), block);
        self.registered.insert(block, (set, chunk));
        true
    }

    /// Maps a sequence onto an existing shared-prefix block: takes a
    /// reference and counts the block of KV memory saved.
    ///
    /// # Panics
    ///
    /// Panics when the block is free (a stale content-table read — the
    /// table drops entries at physical free, so this is unreachable
    /// through [`BlockPool::lookup_prefix`]).
    pub fn map_shared(&mut self, block: BlockId) {
        let rc = self.replicas[block.replica as usize].incref(block);
        self.stats.blocks_saved += 1;
        if rc == 2 {
            self.shared_now += 1;
            self.stats.shared_blocks_peak = self
                .stats
                .shared_blocks_peak
                .max(u64::from(self.shared_now));
        }
    }

    /// Resolves a write into a shared-prefix block (the writer's first
    /// token past the shared prefix, or a differing prefill chunk).
    ///
    /// - Sole holder: the block is unregistered from the content table
    ///   and kept — writing proceeds in place
    ///   ([`Divergence::InPlace`]; no copy is charged).
    /// - Shared: a private replacement is allocated on the same
    ///   replica, the writer's reference released, and the copy counted
    ///   ([`Divergence::Copied`]). Other readers keep the original and
    ///   the table keeps pointing at it.
    ///
    /// Returns `None` — with no state change — when a copy is needed
    /// but the replica has no free block; the caller retries after its
    /// next pressure round (the victim loop accounts copy-on-write
    /// demand, so this is reachable only transiently).
    pub fn diverge(&mut self, block: BlockId) -> Option<Divergence> {
        let replica = block.replica as usize;
        if self.replicas[replica].refcount(block) <= 1 {
            if let Some(key) = self.registered.remove(&block) {
                self.content.remove(&key);
            }
            return Some(Divergence::InPlace);
        }
        let fresh = self.try_alloc(replica, 1)?[0];
        self.stats.cow_copies += 1;
        self.release(std::iter::once(block));
        Some(Divergence::Copied(fresh))
    }

    /// Records one scheduler step for the occupancy / fragmentation
    /// aggregates: `used_tokens` is the KV entries materialized across
    /// all live sequences (clamped to allocated capacity).
    pub fn note_step(&mut self, used_tokens: u64) {
        let used = u64::from(self.used_blocks());
        self.stats.steps += 1;
        self.stats.block_steps += used;
        self.stats.capacity_steps += self.stats.total_blocks;
        self.stats.peak_blocks = self.stats.peak_blocks.max(used);
        let cap_tokens = used * u64::from(self.block_tokens);
        self.stats.alloc_token_steps += cap_tokens;
        self.stats.used_token_steps += used_tokens.min(cap_tokens);
    }

    /// Host-capacity cap (`0` = unbounded).
    pub fn host_capacity_blocks(&self) -> u32 {
        self.host_capacity
    }

    /// Host blocks currently parked by swapped-out sequences.
    pub fn host_used_blocks(&self) -> u32 {
        self.host_used
    }

    /// Tries to park `n` swapped-out blocks in host memory: succeeds
    /// (and holds the space until [`BlockPool::host_unpark`]) when the
    /// capacity is unbounded or `host_used + n` fits; otherwise leaves
    /// the ledger untouched and returns `false` — the caller falls back
    /// to recompute-priced eviction and should record it via
    /// [`BlockPool::note_recompute_fallback`].
    pub fn try_host_park(&mut self, n: u32) -> bool {
        if self.host_capacity != 0 && self.host_used + n > self.host_capacity {
            return false;
        }
        self.host_used += n;
        self.stats.host_peak_blocks = self.stats.host_peak_blocks.max(u64::from(self.host_used));
        true
    }

    /// Releases `n` parked host blocks (at swap-in, or when a swapped
    /// sequence is dropped).
    ///
    /// # Panics
    ///
    /// Panics when more blocks are released than are parked — a ledger
    /// bug the conservation tests must surface, never mask.
    pub fn host_unpark(&mut self, n: u32) {
        assert!(
            n <= self.host_used,
            "host ledger underflow: unpark {n} of {}",
            self.host_used
        );
        self.host_used -= n;
    }

    /// Records a victim evicted recompute-priced because host swap
    /// space was exhausted.
    pub fn note_recompute_fallback(&mut self) {
        self.stats.recompute_fallbacks += 1;
    }

    /// Records a pressure preemption + swap-out of a sequence.
    pub fn note_pressure_swap_out(&mut self) {
        self.stats.pressure_preemptions += 1;
        self.stats.swap_outs += 1;
    }

    /// Records a swap-out that was not caused by memory pressure (e.g.
    /// a slot-demand quantum preemption releasing its blocks).
    pub fn note_swap_out(&mut self) {
        self.stats.swap_outs += 1;
    }

    /// Records a swap-in (resume) of a sequence.
    pub fn note_swap_in(&mut self) {
        self.stats.swap_ins += 1;
    }

    /// The accumulated counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_accounts_exactly() {
        let mut pool = BlockPool::new(2, 4, 16);
        assert_eq!(pool.stats().total_blocks, 8);
        let a = pool.try_alloc(0, 3).unwrap();
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.free_blocks(0), 1);
        assert_eq!(pool.free_blocks(1), 4);
        pool.free(a);
        assert_eq!(pool.used_blocks(), 0);
        let s = pool.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 3);
    }

    #[test]
    fn alloc_fails_without_side_effects() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert!(pool.try_alloc(0, 3).is_none());
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.stats().allocs, 0);
        let a = pool.try_alloc(0, 2).unwrap();
        assert!(pool.try_alloc(0, 1).is_none());
        pool.free(a);
    }

    #[test]
    fn free_list_is_reused_lifo() {
        let mut pool = BlockPool::new(1, 4, 16);
        let a = pool.try_alloc(0, 2).unwrap();
        pool.free(a.clone());
        // The most recently freed block comes back first.
        let b = pool.try_alloc(0, 1).unwrap();
        assert_eq!(b[0], a[1], "LIFO: the last block freed is first out");
        let c = pool.try_alloc(0, 1).unwrap();
        assert_eq!(c[0], a[0]);
        pool.free(b);
        pool.free(c);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = BlockPool::new(1, 2, 16);
        let a = pool.try_alloc(0, 1).unwrap();
        pool.free(a.clone());
        pool.free(a);
    }

    #[test]
    fn blocks_for_rounds_up_and_caps_at_budget() {
        let pool = BlockPool::new(1, 8, 16);
        assert_eq!(pool.blocks_for(0), 1, "at least one block");
        assert_eq!(pool.blocks_for(16), 1);
        assert_eq!(pool.blocks_for(17), 2);
        assert_eq!(pool.blocks_for(10_000), 8, "capped at the budget");
    }

    #[test]
    fn placement_prefers_the_emptiest_replica() {
        let mut pool = BlockPool::new(3, 4, 16);
        assert_eq!(pool.least_loaded_replica(), 0, "lowest index on ties");
        let a = pool.try_alloc(0, 2).unwrap();
        let b = pool.try_alloc(1, 1).unwrap();
        assert_eq!(pool.least_loaded_replica(), 2);
        pool.free(a);
        pool.free(b);
    }

    #[test]
    fn step_sampling_tracks_occupancy_and_fragmentation() {
        let mut pool = BlockPool::new(1, 4, 16);
        let a = pool.try_alloc(0, 2).unwrap();
        pool.note_step(24); // 24 of 32 allocated tokens materialized.
        let s = pool.stats();
        assert_eq!(s.peak_blocks, 2);
        assert!((s.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((s.peak_occupancy() - 0.5).abs() < 1e-12);
        assert!((s.fragmentation_ratio() - 0.25).abs() < 1e-12);
        pool.free(a);
        pool.note_step(0);
        assert!((pool.stats().mean_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KvStats {
            steps: 2,
            block_steps: 4,
            capacity_steps: 8,
            peak_blocks: 3,
            total_blocks: 4,
            allocs: 5,
            frees: 5,
            pressure_preemptions: 1,
            swap_outs: 1,
            swap_ins: 1,
            used_token_steps: 30,
            alloc_token_steps: 64,
            host_peak_blocks: 5,
            recompute_fallbacks: 2,
            blocks_saved: 3,
            shared_blocks_peak: 2,
            cow_copies: 1,
        };
        a.merge(&a.clone());
        assert_eq!(a.steps, 4);
        assert_eq!(a.peak_blocks, 6);
        assert_eq!(a.total_blocks, 8);
        assert_eq!(a.swap_outs, 2);
        assert_eq!(a.host_peak_blocks, 10);
        assert_eq!(a.recompute_fallbacks, 4);
        assert_eq!(a.blocks_saved, 6);
        assert_eq!(a.shared_blocks_peak, 4);
        assert_eq!(a.cow_copies, 2);
        assert!((a.fragmentation_ratio() - (1.0 - 60.0 / 128.0)).abs() < 1e-12);
        assert!((a.dedup_ratio() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn host_ledger_enforces_capacity_at_the_boundary() {
        let mut pool = BlockPool::new(1, 8, 16).with_host_capacity(5);
        assert_eq!(pool.host_capacity_blocks(), 5);
        assert!(pool.try_host_park(3));
        assert!(pool.try_host_park(2), "exactly full is legal");
        assert_eq!(pool.host_used_blocks(), 5);
        assert!(!pool.try_host_park(1), "one past the cap is refused");
        assert_eq!(pool.host_used_blocks(), 5, "refusal leaves no residue");
        pool.note_recompute_fallback();
        pool.host_unpark(2);
        assert!(pool.try_host_park(2));
        pool.host_unpark(5);
        assert_eq!(pool.host_used_blocks(), 0);
        let s = pool.stats();
        assert_eq!(s.host_peak_blocks, 5);
        assert_eq!(s.recompute_fallbacks, 1);
    }

    #[test]
    fn unbounded_host_ledger_always_parks() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert_eq!(pool.host_capacity_blocks(), 0);
        assert!(pool.try_host_park(10_000));
        assert_eq!(pool.host_used_blocks(), 10_000);
        assert_eq!(pool.stats().host_peak_blocks, 10_000);
        pool.host_unpark(10_000);
    }

    #[test]
    #[should_panic(expected = "host ledger underflow")]
    fn host_unpark_underflow_panics() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert!(pool.try_host_park(1));
        pool.host_unpark(2);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = KvStats::default();
        assert_eq!(s.mean_occupancy(), 0.0);
        assert_eq!(s.peak_occupancy(), 0.0);
        assert_eq!(s.fragmentation_ratio(), 0.0);
        assert_eq!(s.dedup_ratio(), 0.0);
    }

    #[test]
    fn shared_mapping_saves_blocks_and_conserves_refs() {
        let mut pool = BlockPool::new(1, 8, 16);
        // Owner allocates a 3-block prefix and registers it for set 7.
        let owner = pool.try_alloc(0, 3).unwrap();
        for (c, &b) in owner.iter().enumerate() {
            assert!(pool.register_prefix(7, c as u32, b));
        }
        assert!(!pool.register_prefix(7, 0, owner[1]), "first writer wins");
        // A sharer maps the prefix instead of allocating.
        let mapped: Vec<BlockId> = (0..3)
            .map(|c| pool.lookup_prefix(7, c).expect("registered"))
            .collect();
        assert_eq!(mapped, owner);
        for &b in &mapped {
            pool.map_shared(b);
            assert_eq!(pool.refcount(b), 2);
        }
        assert_eq!(pool.used_blocks(), 3, "mapping allocates nothing");
        assert_eq!(pool.shared_blocks(), 3);
        let s = pool.stats();
        assert_eq!(s.blocks_saved, 3);
        assert_eq!(s.shared_blocks_peak, 3);
        assert!(
            (s.dedup_ratio() - 0.5).abs() < 1e-12,
            "3 saved of 6 logical"
        );
        // The sharer leaves: blocks stay resident for the owner.
        assert_eq!(pool.release(mapped), 0);
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.shared_blocks(), 0);
        // The owner leaves: blocks free and table entries die with them.
        assert_eq!(pool.release(owner), 3);
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.lookup_prefix(7, 0), None, "entry died with block");
        assert_eq!(pool.stats().frees, 3, "frees count physical frees only");
    }

    #[test]
    fn diverge_copies_when_shared_and_privatizes_when_sole() {
        let mut pool = BlockPool::new(1, 8, 16);
        let owner = pool.try_alloc(0, 1).unwrap();
        assert!(pool.register_prefix(3, 0, owner[0]));
        pool.map_shared(owner[0]);
        // Shared: the writer gets a private copy; readers keep the
        // original and the table entry survives.
        let d = pool.diverge(owner[0]).expect("a block is free");
        let Divergence::Copied(fresh) = d else {
            panic!("shared block must copy, got {d:?}");
        };
        assert_ne!(fresh, owner[0]);
        assert_eq!(pool.refcount(owner[0]), 1, "writer's ref released");
        assert_eq!(pool.lookup_prefix(3, 0), Some(owner[0]));
        assert_eq!(pool.stats().cow_copies, 1);
        // Sole holder: divergence just unregisters, in place.
        assert_eq!(pool.diverge(owner[0]), Some(Divergence::InPlace));
        assert_eq!(pool.lookup_prefix(3, 0), None);
        assert_eq!(pool.stats().cow_copies, 1, "no copy charged in place");
        pool.free([owner[0], fresh]);
        assert_eq!(pool.used_blocks(), 0);
    }

    #[test]
    fn diverge_without_free_blocks_is_deferred() {
        let mut pool = BlockPool::new(1, 1, 16);
        let b = pool.try_alloc(0, 1).unwrap()[0];
        assert!(pool.register_prefix(9, 0, b));
        pool.map_shared(b);
        assert_eq!(pool.diverge(b), None, "no free block for the copy");
        assert_eq!(pool.refcount(b), 2, "deferral leaves no residue");
        pool.free([b, b]);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn over_release_of_shared_block_panics() {
        let mut pool = BlockPool::new(1, 2, 16);
        let b = pool.try_alloc(0, 1).unwrap()[0];
        pool.map_shared(b);
        pool.free([b, b]); // two refs, two releases: fine
        pool.free([b]); // third release: double free
    }
}
