//! The paged block allocator: per-replica budgets and pool-wide stats.

/// A physical KV block: `(replica, index)` within that replica's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Owning replica.
    pub replica: u32,
    /// Block index within the replica's budget.
    pub index: u32,
}

/// One replica's KV memory: a fixed budget of blocks with a LIFO free
/// list (freed blocks are reused first, like vLLM's block allocator) and
/// strict accounting.
#[derive(Debug, Clone)]
pub struct KvBudget {
    replica: u32,
    /// Free block indices, popped from the back (LIFO reuse).
    free_list: Vec<u32>,
    /// Allocation bit per block: guards against double frees.
    allocated: Vec<bool>,
}

impl KvBudget {
    /// A fresh budget of `budget_blocks` free blocks for `replica`.
    pub fn new(replica: u32, budget_blocks: u32) -> Self {
        Self {
            replica,
            // Reverse order so the first pop is block 0 (cosmetic, but
            // keeps allocation traces easy to read).
            free_list: (0..budget_blocks).rev().collect(),
            allocated: vec![false; budget_blocks as usize],
        }
    }

    /// Total blocks in the budget.
    pub fn budget(&self) -> u32 {
        self.allocated.len() as u32
    }

    /// Blocks currently free.
    pub fn free(&self) -> u32 {
        self.free_list.len() as u32
    }

    /// Blocks currently allocated.
    pub fn used(&self) -> u32 {
        self.budget() - self.free()
    }

    /// Allocates `n` blocks, or `None` (and no change) if fewer are
    /// free. Freed blocks are reused LIFO.
    pub fn try_alloc(&mut self, n: u32) -> Option<Vec<BlockId>> {
        if self.free() < n {
            return None;
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let index = self.free_list.pop().expect("free count checked");
            debug_assert!(!self.allocated[index as usize], "free list corrupt");
            self.allocated[index as usize] = true;
            out.push(BlockId {
                replica: self.replica,
                index,
            });
        }
        Some(out)
    }

    /// Returns one block to the free list.
    ///
    /// # Panics
    ///
    /// Panics on a double free or a foreign block — both are allocator
    /// bugs the conservation tests must surface, never mask.
    pub fn free_block(&mut self, block: BlockId) {
        assert_eq!(block.replica, self.replica, "block freed to wrong replica");
        let slot = &mut self.allocated[block.index as usize];
        assert!(*slot, "double free of {block:?}");
        *slot = false;
        self.free_list.push(block.index);
    }
}

/// Pool-wide KV memory counters, merged across pools for reports. All
/// counters are exact and deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KvStats {
    /// Steps sampled (one per scheduler iteration).
    pub steps: u64,
    /// Sum over sampled steps of blocks in use.
    pub block_steps: u64,
    /// Sum over sampled steps of the block capacity (`steps x
    /// total_blocks` for a single pool; additive across pools).
    pub capacity_steps: u64,
    /// Peak blocks in use (summed across pools when merged, so the
    /// merged value is an upper bound on the true simultaneous peak).
    pub peak_blocks: u64,
    /// Total block capacity across replicas (additive across pools).
    pub total_blocks: u64,
    /// Blocks handed out by the allocator.
    pub allocs: u64,
    /// Blocks returned to the allocator.
    pub frees: u64,
    /// Sequences preempted by memory pressure (allocation failure), as
    /// opposed to slot-demand quantum preemption.
    pub pressure_preemptions: u64,
    /// Sequences swapped out (their blocks freed to the pool).
    pub swap_outs: u64,
    /// Sequences swapped back in (blocks re-allocated).
    pub swap_ins: u64,
    /// Sum over sampled steps of KV tokens materialized in allocated
    /// blocks (fragmentation numerator; see
    /// [`KvStats::fragmentation_ratio`]).
    pub used_token_steps: u64,
    /// Sum over sampled steps of token capacity of allocated blocks
    /// (`blocks x block_tokens`).
    pub alloc_token_steps: u64,
    /// Peak blocks parked in host (CPU) memory by swapped-out victims
    /// (summed across pools when merged).
    pub host_peak_blocks: u64,
    /// Victims evicted recompute-priced because host swap space was
    /// exhausted (see `KvSwap::host_capacity_blocks`).
    pub recompute_fallbacks: u64,
}

impl KvStats {
    /// Mean fraction of the block budget in use over sampled steps.
    pub fn mean_occupancy(&self) -> f64 {
        if self.capacity_steps == 0 {
            0.0
        } else {
            self.block_steps as f64 / self.capacity_steps as f64
        }
    }

    /// Peak fraction of the block budget in use.
    pub fn peak_occupancy(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.peak_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Mean internal fragmentation of allocated blocks: the fraction of
    /// allocated token capacity holding no KV entries (last-block slack
    /// plus admission-time prefill preallocation).
    pub fn fragmentation_ratio(&self) -> f64 {
        if self.alloc_token_steps == 0 {
            0.0
        } else {
            1.0 - (self.used_token_steps.min(self.alloc_token_steps) as f64
                / self.alloc_token_steps as f64)
        }
    }

    /// Accumulates another pool's counters into this one.
    pub fn merge(&mut self, other: &KvStats) {
        self.steps += other.steps;
        self.block_steps += other.block_steps;
        self.capacity_steps += other.capacity_steps;
        self.peak_blocks += other.peak_blocks;
        self.total_blocks += other.total_blocks;
        self.allocs += other.allocs;
        self.frees += other.frees;
        self.pressure_preemptions += other.pressure_preemptions;
        self.swap_outs += other.swap_outs;
        self.swap_ins += other.swap_ins;
        self.used_token_steps += other.used_token_steps;
        self.alloc_token_steps += other.alloc_token_steps;
        self.host_peak_blocks += other.host_peak_blocks;
        self.recompute_fallbacks += other.recompute_fallbacks;
    }
}

/// The pool-wide allocator: one [`KvBudget`] per replica plus counters,
/// and the host-side (CPU) ledger swapped-out victims park blocks in.
#[derive(Debug, Clone)]
pub struct BlockPool {
    block_tokens: u32,
    replicas: Vec<KvBudget>,
    /// Host blocks available to swapped-out state; `0` is unbounded.
    host_capacity: u32,
    /// Host blocks currently parked by swapped-out sequences.
    host_used: u32,
    stats: KvStats,
}

impl BlockPool {
    /// A pool of `replicas` budgets of `budget_blocks` blocks holding
    /// `block_tokens` tokens each.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero — a zero-size pool means "KV
    /// modeling off" and callers must not construct one.
    pub fn new(replicas: u32, budget_blocks: u32, block_tokens: u32) -> Self {
        assert!(replicas > 0, "at least one replica");
        assert!(budget_blocks > 0, "at least one block per replica");
        assert!(block_tokens > 0, "blocks must hold at least one token");
        Self {
            block_tokens,
            replicas: (0..replicas)
                .map(|r| KvBudget::new(r, budget_blocks))
                .collect(),
            host_capacity: 0,
            host_used: 0,
            stats: KvStats {
                total_blocks: u64::from(replicas) * u64::from(budget_blocks),
                ..KvStats::default()
            },
        }
    }

    /// Caps the host (CPU) blocks swapped-out victims may park
    /// (`KvSwap::host_capacity_blocks`); `0` is unbounded.
    pub fn with_host_capacity(mut self, blocks: u32) -> Self {
        self.host_capacity = blocks;
        self
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u32 {
        self.block_tokens
    }

    /// Blocks per replica.
    pub fn budget_blocks(&self) -> u32 {
        self.replicas[0].budget()
    }

    /// Number of replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Blocks needed to hold `tokens` KV entries, capped at one
    /// replica's budget: a sequence longer than the whole replica runs
    /// with the full budget and windows its tail into the last block
    /// (so over-long jobs degrade instead of deadlocking admission).
    pub fn blocks_for(&self, tokens: u64) -> u32 {
        let raw = tokens.div_ceil(u64::from(self.block_tokens));
        (raw.min(u64::from(self.budget_blocks())).max(1)) as u32
    }

    /// Blocks in use across all replicas.
    pub fn used_blocks(&self) -> u32 {
        self.replicas.iter().map(KvBudget::used).sum()
    }

    /// Blocks free on one replica.
    pub fn free_blocks(&self, replica: usize) -> u32 {
        self.replicas[replica].free()
    }

    /// Pool-wide occupancy fraction in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        f64::from(self.used_blocks()) / self.stats.total_blocks as f64
    }

    /// The replica with the most free blocks (lowest index on ties) —
    /// the deterministic placement rule for new sequences.
    pub fn least_loaded_replica(&self) -> usize {
        let mut best = 0usize;
        for (i, b) in self.replicas.iter().enumerate().skip(1) {
            if b.free() > self.replicas[best].free() {
                best = i;
            }
        }
        best
    }

    /// Allocates `n` blocks on `replica`, or `None` (and no change) if
    /// fewer are free.
    pub fn try_alloc(&mut self, replica: usize, n: u32) -> Option<Vec<BlockId>> {
        let blocks = self.replicas[replica].try_alloc(n)?;
        self.stats.allocs += u64::from(n);
        Some(blocks)
    }

    /// Frees a set of blocks back to their owning replicas.
    ///
    /// # Panics
    ///
    /// Panics on double frees (see [`KvBudget::free_block`]).
    pub fn free(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        for b in blocks {
            self.replicas[b.replica as usize].free_block(b);
            self.stats.frees += 1;
        }
    }

    /// Records one scheduler step for the occupancy / fragmentation
    /// aggregates: `used_tokens` is the KV entries materialized across
    /// all live sequences (clamped to allocated capacity).
    pub fn note_step(&mut self, used_tokens: u64) {
        let used = u64::from(self.used_blocks());
        self.stats.steps += 1;
        self.stats.block_steps += used;
        self.stats.capacity_steps += self.stats.total_blocks;
        self.stats.peak_blocks = self.stats.peak_blocks.max(used);
        let cap_tokens = used * u64::from(self.block_tokens);
        self.stats.alloc_token_steps += cap_tokens;
        self.stats.used_token_steps += used_tokens.min(cap_tokens);
    }

    /// Host-capacity cap (`0` = unbounded).
    pub fn host_capacity_blocks(&self) -> u32 {
        self.host_capacity
    }

    /// Host blocks currently parked by swapped-out sequences.
    pub fn host_used_blocks(&self) -> u32 {
        self.host_used
    }

    /// Tries to park `n` swapped-out blocks in host memory: succeeds
    /// (and holds the space until [`BlockPool::host_unpark`]) when the
    /// capacity is unbounded or `host_used + n` fits; otherwise leaves
    /// the ledger untouched and returns `false` — the caller falls back
    /// to recompute-priced eviction and should record it via
    /// [`BlockPool::note_recompute_fallback`].
    pub fn try_host_park(&mut self, n: u32) -> bool {
        if self.host_capacity != 0 && self.host_used + n > self.host_capacity {
            return false;
        }
        self.host_used += n;
        self.stats.host_peak_blocks = self.stats.host_peak_blocks.max(u64::from(self.host_used));
        true
    }

    /// Releases `n` parked host blocks (at swap-in, or when a swapped
    /// sequence is dropped).
    ///
    /// # Panics
    ///
    /// Panics when more blocks are released than are parked — a ledger
    /// bug the conservation tests must surface, never mask.
    pub fn host_unpark(&mut self, n: u32) {
        assert!(
            n <= self.host_used,
            "host ledger underflow: unpark {n} of {}",
            self.host_used
        );
        self.host_used -= n;
    }

    /// Records a victim evicted recompute-priced because host swap
    /// space was exhausted.
    pub fn note_recompute_fallback(&mut self) {
        self.stats.recompute_fallbacks += 1;
    }

    /// Records a pressure preemption + swap-out of a sequence.
    pub fn note_pressure_swap_out(&mut self) {
        self.stats.pressure_preemptions += 1;
        self.stats.swap_outs += 1;
    }

    /// Records a swap-out that was not caused by memory pressure (e.g.
    /// a slot-demand quantum preemption releasing its blocks).
    pub fn note_swap_out(&mut self) {
        self.stats.swap_outs += 1;
    }

    /// Records a swap-in (resume) of a sequence.
    pub fn note_swap_in(&mut self) {
        self.stats.swap_ins += 1;
    }

    /// The accumulated counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip_accounts_exactly() {
        let mut pool = BlockPool::new(2, 4, 16);
        assert_eq!(pool.stats().total_blocks, 8);
        let a = pool.try_alloc(0, 3).unwrap();
        assert_eq!(pool.used_blocks(), 3);
        assert_eq!(pool.free_blocks(0), 1);
        assert_eq!(pool.free_blocks(1), 4);
        pool.free(a);
        assert_eq!(pool.used_blocks(), 0);
        let s = pool.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 3);
    }

    #[test]
    fn alloc_fails_without_side_effects() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert!(pool.try_alloc(0, 3).is_none());
        assert_eq!(pool.used_blocks(), 0);
        assert_eq!(pool.stats().allocs, 0);
        let a = pool.try_alloc(0, 2).unwrap();
        assert!(pool.try_alloc(0, 1).is_none());
        pool.free(a);
    }

    #[test]
    fn free_list_is_reused_lifo() {
        let mut pool = BlockPool::new(1, 4, 16);
        let a = pool.try_alloc(0, 2).unwrap();
        pool.free(a.clone());
        // The most recently freed block comes back first.
        let b = pool.try_alloc(0, 1).unwrap();
        assert_eq!(b[0], a[1], "LIFO: the last block freed is first out");
        let c = pool.try_alloc(0, 1).unwrap();
        assert_eq!(c[0], a[0]);
        pool.free(b);
        pool.free(c);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pool = BlockPool::new(1, 2, 16);
        let a = pool.try_alloc(0, 1).unwrap();
        pool.free(a.clone());
        pool.free(a);
    }

    #[test]
    fn blocks_for_rounds_up_and_caps_at_budget() {
        let pool = BlockPool::new(1, 8, 16);
        assert_eq!(pool.blocks_for(0), 1, "at least one block");
        assert_eq!(pool.blocks_for(16), 1);
        assert_eq!(pool.blocks_for(17), 2);
        assert_eq!(pool.blocks_for(10_000), 8, "capped at the budget");
    }

    #[test]
    fn placement_prefers_the_emptiest_replica() {
        let mut pool = BlockPool::new(3, 4, 16);
        assert_eq!(pool.least_loaded_replica(), 0, "lowest index on ties");
        let a = pool.try_alloc(0, 2).unwrap();
        let b = pool.try_alloc(1, 1).unwrap();
        assert_eq!(pool.least_loaded_replica(), 2);
        pool.free(a);
        pool.free(b);
    }

    #[test]
    fn step_sampling_tracks_occupancy_and_fragmentation() {
        let mut pool = BlockPool::new(1, 4, 16);
        let a = pool.try_alloc(0, 2).unwrap();
        pool.note_step(24); // 24 of 32 allocated tokens materialized.
        let s = pool.stats();
        assert_eq!(s.peak_blocks, 2);
        assert!((s.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((s.peak_occupancy() - 0.5).abs() < 1e-12);
        assert!((s.fragmentation_ratio() - 0.25).abs() < 1e-12);
        pool.free(a);
        pool.note_step(0);
        assert!((pool.stats().mean_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = KvStats {
            steps: 2,
            block_steps: 4,
            capacity_steps: 8,
            peak_blocks: 3,
            total_blocks: 4,
            allocs: 5,
            frees: 5,
            pressure_preemptions: 1,
            swap_outs: 1,
            swap_ins: 1,
            used_token_steps: 30,
            alloc_token_steps: 64,
            host_peak_blocks: 5,
            recompute_fallbacks: 2,
        };
        a.merge(&a.clone());
        assert_eq!(a.steps, 4);
        assert_eq!(a.peak_blocks, 6);
        assert_eq!(a.total_blocks, 8);
        assert_eq!(a.swap_outs, 2);
        assert_eq!(a.host_peak_blocks, 10);
        assert_eq!(a.recompute_fallbacks, 4);
        assert!((a.fragmentation_ratio() - (1.0 - 60.0 / 128.0)).abs() < 1e-12);
    }

    #[test]
    fn host_ledger_enforces_capacity_at_the_boundary() {
        let mut pool = BlockPool::new(1, 8, 16).with_host_capacity(5);
        assert_eq!(pool.host_capacity_blocks(), 5);
        assert!(pool.try_host_park(3));
        assert!(pool.try_host_park(2), "exactly full is legal");
        assert_eq!(pool.host_used_blocks(), 5);
        assert!(!pool.try_host_park(1), "one past the cap is refused");
        assert_eq!(pool.host_used_blocks(), 5, "refusal leaves no residue");
        pool.note_recompute_fallback();
        pool.host_unpark(2);
        assert!(pool.try_host_park(2));
        pool.host_unpark(5);
        assert_eq!(pool.host_used_blocks(), 0);
        let s = pool.stats();
        assert_eq!(s.host_peak_blocks, 5);
        assert_eq!(s.recompute_fallbacks, 1);
    }

    #[test]
    fn unbounded_host_ledger_always_parks() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert_eq!(pool.host_capacity_blocks(), 0);
        assert!(pool.try_host_park(10_000));
        assert_eq!(pool.host_used_blocks(), 10_000);
        assert_eq!(pool.stats().host_peak_blocks, 10_000);
        pool.host_unpark(10_000);
    }

    #[test]
    #[should_panic(expected = "host ledger underflow")]
    fn host_unpark_underflow_panics() {
        let mut pool = BlockPool::new(1, 2, 16);
        assert!(pool.try_host_park(1));
        pool.host_unpark(2);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = KvStats::default();
        assert_eq!(s.mean_occupancy(), 0.0);
        assert_eq!(s.peak_occupancy(), 0.0);
        assert_eq!(s.fragmentation_ratio(), 0.0);
    }
}
