//! Property tests: blocks are conserved by the allocator under
//! arbitrary alloc/free interleavings.

use ic_kvmem::{BlockId, BlockPool};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any interleaving of allocations and frees conserves blocks:
    /// used == outstanding at every point, every allocated id is
    /// unique while live, and draining everything returns the pool to
    /// empty with allocs == frees.
    #[test]
    fn alloc_free_interleavings_conserve_blocks(
        replicas in 1u32..4,
        budget in 1u32..24,
        ops in proptest::collection::vec(0u32..6, 1..120),
    ) {
        let mut pool = BlockPool::new(replicas, budget, 16);
        let mut live: Vec<Vec<BlockId>> = Vec::new();
        for op in ops {
            if op < 4 {
                // Alloc 1..=op+1 blocks on the emptiest replica.
                let replica = pool.least_loaded_replica();
                let want = op + 1;
                let free_before = pool.free_blocks(replica);
                match pool.try_alloc(replica, want) {
                    Some(blocks) => {
                        prop_assert_eq!(blocks.len() as u32, want);
                        live.push(blocks);
                    }
                    None => prop_assert!(free_before < want, "spurious failure"),
                }
            } else if let Some(blocks) = if op == 4 {
                // Free the oldest live allocation...
                (!live.is_empty()).then(|| live.remove(0))
            } else {
                // ...or the newest (exercises LIFO reuse).
                live.pop()
            } {
                pool.free(blocks);
            }
            let outstanding: u32 = live.iter().map(|b| b.len() as u32).sum();
            prop_assert_eq!(pool.used_blocks(), outstanding, "used != outstanding");
            // No id is live twice.
            let mut ids: Vec<BlockId> = live.iter().flatten().copied().collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate live block");
        }
        for blocks in live.drain(..) {
            pool.free(blocks);
        }
        prop_assert_eq!(pool.used_blocks(), 0, "leak after full drain");
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees, "alloc/free imbalance");
    }

    /// The host-side swap ledger conserves blocks under arbitrary
    /// park/unpark interleavings: `host_used` always equals the sum of
    /// outstanding parks, never exceeds a non-zero capacity, refused
    /// parks leave no residue, and a full drain returns to zero with
    /// the peak recorded exactly.
    #[test]
    fn host_park_interleavings_conserve_blocks(
        capacity in 0u32..32,
        ops in proptest::collection::vec((0u32..2).prop_map(|v| v == 0), 1..120),
        sizes in proptest::collection::vec(1u32..9, 120),
    ) {
        let mut pool = BlockPool::new(1, 4, 16).with_host_capacity(capacity);
        let mut parked: Vec<u32> = Vec::new();
        let mut peak = 0u64;
        for (park, &n) in ops.into_iter().zip(&sizes) {
            if park {
                let before = pool.host_used_blocks();
                if pool.try_host_park(n) {
                    parked.push(n);
                    peak = peak.max(u64::from(before + n));
                } else {
                    pool.note_recompute_fallback();
                    prop_assert!(capacity != 0, "unbounded ledger never refuses");
                    prop_assert!(before + n > capacity, "spurious refusal");
                    prop_assert_eq!(pool.host_used_blocks(), before, "refusal left residue");
                }
            } else if let Some(n) = parked.pop() {
                pool.host_unpark(n);
            }
            let outstanding: u32 = parked.iter().sum();
            prop_assert_eq!(pool.host_used_blocks(), outstanding, "ledger != outstanding");
            if capacity != 0 {
                prop_assert!(pool.host_used_blocks() <= capacity, "cap exceeded");
            }
        }
        for n in parked.drain(..) {
            pool.host_unpark(n);
        }
        prop_assert_eq!(pool.host_used_blocks(), 0, "host blocks leaked");
        prop_assert_eq!(pool.stats().host_peak_blocks, peak, "peak mis-tracked");
    }
}
