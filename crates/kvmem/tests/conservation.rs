//! Property tests: blocks are conserved by the allocator under
//! arbitrary alloc/free interleavings — including refcounted
//! shared-prefix mappings and copy-on-write divergence.

use ic_kvmem::{BlockId, BlockPool, Divergence};
use proptest::prelude::*;
use std::collections::BTreeMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any interleaving of allocations and frees conserves blocks:
    /// used == outstanding at every point, every allocated id is
    /// unique while live, and draining everything returns the pool to
    /// empty with allocs == frees.
    #[test]
    fn alloc_free_interleavings_conserve_blocks(
        replicas in 1u32..4,
        budget in 1u32..24,
        ops in proptest::collection::vec(0u32..6, 1..120),
    ) {
        let mut pool = BlockPool::new(replicas, budget, 16);
        let mut live: Vec<Vec<BlockId>> = Vec::new();
        for op in ops {
            if op < 4 {
                // Alloc 1..=op+1 blocks on the emptiest replica.
                let replica = pool.least_loaded_replica();
                let want = op + 1;
                let free_before = pool.free_blocks(replica);
                match pool.try_alloc(replica, want) {
                    Some(blocks) => {
                        prop_assert_eq!(blocks.len() as u32, want);
                        live.push(blocks);
                    }
                    None => prop_assert!(free_before < want, "spurious failure"),
                }
            } else if let Some(blocks) = if op == 4 {
                // Free the oldest live allocation...
                (!live.is_empty()).then(|| live.remove(0))
            } else {
                // ...or the newest (exercises LIFO reuse).
                live.pop()
            } {
                pool.free(blocks);
            }
            let outstanding: u32 = live.iter().map(|b| b.len() as u32).sum();
            prop_assert_eq!(pool.used_blocks(), outstanding, "used != outstanding");
            // No id is live twice.
            let mut ids: Vec<BlockId> = live.iter().flatten().copied().collect();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "duplicate live block");
        }
        for blocks in live.drain(..) {
            pool.free(blocks);
        }
        prop_assert_eq!(pool.used_blocks(), 0, "leak after full drain");
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees, "alloc/free imbalance");
    }

    /// The host-side swap ledger conserves blocks under arbitrary
    /// park/unpark interleavings: `host_used` always equals the sum of
    /// outstanding parks, never exceeds a non-zero capacity, refused
    /// parks leave no residue, and a full drain returns to zero with
    /// the peak recorded exactly.
    #[test]
    fn host_park_interleavings_conserve_blocks(
        capacity in 0u32..32,
        ops in proptest::collection::vec((0u32..2).prop_map(|v| v == 0), 1..120),
        sizes in proptest::collection::vec(1u32..9, 120),
    ) {
        let mut pool = BlockPool::new(1, 4, 16).with_host_capacity(capacity);
        let mut parked: Vec<u32> = Vec::new();
        let mut peak = 0u64;
        for (park, &n) in ops.into_iter().zip(&sizes) {
            if park {
                let before = pool.host_used_blocks();
                if pool.try_host_park(n) {
                    parked.push(n);
                    peak = peak.max(u64::from(before + n));
                } else {
                    pool.note_recompute_fallback();
                    prop_assert!(capacity != 0, "unbounded ledger never refuses");
                    prop_assert!(before + n > capacity, "spurious refusal");
                    prop_assert_eq!(pool.host_used_blocks(), before, "refusal left residue");
                }
            } else if let Some(n) = parked.pop() {
                pool.host_unpark(n);
            }
            let outstanding: u32 = parked.iter().sum();
            prop_assert_eq!(pool.host_used_blocks(), outstanding, "ledger != outstanding");
            if capacity != 0 {
                prop_assert!(pool.host_used_blocks() <= capacity, "cap exceeded");
            }
        }
        for n in parked.drain(..) {
            pool.host_unpark(n);
        }
        prop_assert_eq!(pool.host_used_blocks(), 0, "host blocks leaked");
        prop_assert_eq!(pool.stats().host_peak_blocks, peak, "peak mis-tracked");
    }

    /// Refcount conservation under arbitrary interleavings of the four
    /// sharing-layer verbs — alloc+register, map (share), diverge
    /// (CoW / in-place privatize), and release. The model is a bag of
    /// *handles*, each one reference some sequence holds on a block:
    /// at every step each block's refcount equals its handle count,
    /// `used_blocks` equals the number of distinct referenced blocks,
    /// `shared_blocks` equals the blocks with two or more handles, and
    /// a full drain returns the pool to empty with physical allocs ==
    /// physical frees and the saved/CoW counters matching the executed
    /// verbs exactly.
    #[test]
    fn refcount_interleavings_conserve_blocks(
        replicas in 1u32..3,
        budget in 1u32..24,
        ops in proptest::collection::vec(0u32..8, 1..160),
    ) {
        let mut pool = BlockPool::new(replicas, budget, 16);
        // One entry per reference held (a block with n handles has
        // refcount n).
        let mut handles: Vec<BlockId> = Vec::new();
        let mut next_set: u64 = 0;
        let mut expected_saved = 0u64;
        let mut expected_cow = 0u64;
        for op in ops {
            match op {
                0 | 1 => {
                    // Alloc one block and hash-cons it under a fresh
                    // key. A fresh block can never collide in the
                    // content table: entries die at physical free and
                    // CoW copies are never registered.
                    let replica = pool.least_loaded_replica();
                    if let Some(blocks) = pool.try_alloc(replica, 1) {
                        let b = blocks[0];
                        prop_assert!(pool.register_prefix(next_set, 0, b));
                        next_set += 1;
                        handles.push(b);
                    }
                }
                2 | 3 => {
                    // Share: map a still-resident content-table entry.
                    if next_set > 0 {
                        let set = (u64::from(op) * 31 + handles.len() as u64) % next_set;
                        if let Some(b) = pool.lookup_prefix(set, 0) {
                            pool.map_shared(b);
                            handles.push(b);
                            expected_saved += 1;
                        }
                    }
                }
                4 | 5 => {
                    // Diverge: one handle writes past the shared
                    // region. Sole holder privatizes in place; a
                    // shared block copy-on-writes, moving only the
                    // writer's handle; an exhausted replica defers.
                    if !handles.is_empty() {
                        let i = (op as usize * 7 + handles.len()) % handles.len();
                        let b = handles[i];
                        match pool.diverge(b) {
                            Some(Divergence::InPlace) => {
                                prop_assert!(!pool.is_registered(b));
                            }
                            Some(Divergence::Copied(fresh)) => {
                                prop_assert!(fresh != b, "copy must be a new block");
                                handles[i] = fresh;
                                expected_cow += 1;
                            }
                            None => prop_assert_eq!(
                                pool.free_blocks(b.replica as usize), 0,
                                "diverge may only defer on an exhausted replica"
                            ),
                        }
                    }
                }
                _ => {
                    // Release one reference.
                    if let Some(b) = handles.pop() {
                        pool.release([b]);
                    }
                }
            }
            let mut counts: BTreeMap<BlockId, u32> = BTreeMap::new();
            for &b in &handles {
                *counts.entry(b).or_default() += 1;
            }
            for (&b, &c) in &counts {
                prop_assert_eq!(pool.refcount(b), c, "refcount != handle count");
            }
            prop_assert_eq!(pool.used_blocks() as usize, counts.len(), "used != referenced");
            let shared = counts.values().filter(|&&c| c >= 2).count();
            prop_assert_eq!(pool.shared_blocks() as usize, shared, "shared_blocks drifted");
        }
        for b in handles.drain(..) {
            pool.release([b]);
        }
        prop_assert_eq!(pool.used_blocks(), 0, "leak after full drain");
        let stats = pool.stats();
        prop_assert_eq!(stats.allocs, stats.frees, "physical alloc/free imbalance");
        prop_assert_eq!(stats.blocks_saved, expected_saved, "saved != map count");
        prop_assert_eq!(stats.cow_copies, expected_cow, "cow != copy count");
    }
}
