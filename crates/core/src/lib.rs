//! IC-Cache: efficient LLM serving via in-context caching.
//!
//! This crate assembles the paper's three services — Example Selector
//! (§4.1), Request Router (§4.2) and Example Manager (§4.3) — into the
//! serving workflow of Algorithm 1 / Figure 5:
//!
//! 1. retrieve high-utility historical request–response pairs,
//! 2. route the (possibly augmented) request to the most suitable model
//!    under the current load,
//! 3. generate the response,
//! 4. optionally admit the new pair into the example cache, solicit
//!    feedback, and run the offline maintenance loops (cost-aware replay,
//!    knapsack eviction, threshold adaptation, proxy/bandit updates).
//!
//! The public entry point mirrors Figure 6's `IC_cacheClient`:
//!
//! ```
//! use ic_cache::{IcCacheClient, IcCacheConfig};
//! use ic_workloads::{Dataset, WorkloadGenerator};
//!
//! let mut client = IcCacheClient::new(IcCacheConfig::gemma_pair());
//! let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 7);
//! let requests = wg.generate_requests(4);
//! let responses = client.generate(&requests);
//! client.update_cache(&requests, &responses);
//! client.stop();
//! assert_eq!(responses.len(), 4);
//! ```

pub mod client;
pub mod config;
pub mod failover;
pub mod frontend;
pub mod prompt;
pub mod system;

pub use client::{IcCacheClient, Response};
pub use config::IcCacheConfig;
pub use failover::{ComponentHealth, FailoverState};
pub use frontend::{FrontEnd, FrontEndStats};
pub use prompt::{autorater_prompt, render_prompt};
pub use system::{IcCacheSystem, MaintenanceReport, ServeOutcome};
// Selection appears throughout the serving API (`ServeOutcome::selection`,
// `preselect`, `serve_with_selection`); re-exported so engine-layer crates
// can name it without a direct ic-selector dependency.
pub use ic_selector::Selection;
