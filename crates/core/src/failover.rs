//! Component health and bypass behaviour (§5, Fault Tolerance).
//!
//! "If a failed request to the Example Retriever or Request Router is
//! detected, the system automatically bypasses these components and routes
//! the request directly to the inference backend to maintain service
//! continuity. Each component runs a lightweight daemon process that
//! monitors service health and initiates automatic recovery."
//!
//! In this single-process reference implementation, health is a state
//! machine driven by failure/success reports (the daemon's heartbeat) with
//! automatic recovery after a configurable number of clean probes.

/// Health state of one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentHealth {
    /// Serving normally.
    Healthy,
    /// Bypassed; probes count toward recovery.
    Unhealthy {
        /// Consecutive successful probes seen so far.
        clean_probes: u32,
    },
}

impl ComponentHealth {
    fn is_healthy(self) -> bool {
        matches!(self, ComponentHealth::Healthy)
    }
}

/// Tracks the selector's and router's health, plus the health of the
/// model pools behind them (a pool failover drains the pool's work back
/// through the router tier and keeps new routing decisions off the
/// model until it recovers).
#[derive(Debug, Clone)]
pub struct FailoverState {
    selector: ComponentHealth,
    router: ComponentHealth,
    /// Models whose serving pools are currently down (sorted; tiny).
    down_models: Vec<ic_llmsim::ModelId>,
    /// Clean probes required before an unhealthy component recovers.
    recovery_probes: u32,
    /// Failures observed (diagnostics).
    failures: u64,
}

impl Default for FailoverState {
    fn default() -> Self {
        Self {
            selector: ComponentHealth::Healthy,
            router: ComponentHealth::Healthy,
            down_models: Vec::new(),
            recovery_probes: 3,
            failures: 0,
        }
    }
}

impl FailoverState {
    /// Whether selection should run (false = bypass: serve bare).
    pub fn selector_healthy(&self) -> bool {
        self.selector.is_healthy()
    }

    /// Whether routing should run (false = bypass: primary model).
    pub fn router_healthy(&self) -> bool {
        self.router.is_healthy()
    }

    /// Total failures reported.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Force selector health (fault injection in tests).
    pub fn set_selector_healthy(&mut self, healthy: bool) {
        self.selector = if healthy {
            ComponentHealth::Healthy
        } else {
            ComponentHealth::Unhealthy { clean_probes: 0 }
        };
    }

    /// Force router health (fault injection in tests).
    pub fn set_router_healthy(&mut self, healthy: bool) {
        self.router = if healthy {
            ComponentHealth::Healthy
        } else {
            ComponentHealth::Unhealthy { clean_probes: 0 }
        };
    }

    /// Whether a model's serving pool is up (routing should avoid down
    /// models; the system falls back to the best healthy arm).
    pub fn model_healthy(&self, model: ic_llmsim::ModelId) -> bool {
        self.down_models.binary_search(&model).is_err()
    }

    /// Marks a model's serving pool up or down. A down transition counts
    /// as a failure; repeated marks are idempotent.
    pub fn set_model_healthy(&mut self, model: ic_llmsim::ModelId, healthy: bool) {
        match self.down_models.binary_search(&model) {
            Ok(i) if healthy => {
                self.down_models.remove(i);
            }
            Err(i) if !healthy => {
                self.down_models.insert(i, model);
                self.failures += 1;
            }
            _ => {}
        }
    }

    /// Number of models currently marked down.
    pub fn down_models(&self) -> usize {
        self.down_models.len()
    }

    /// Reports a selector failure (request timed out / errored).
    pub fn report_selector_failure(&mut self) {
        self.failures += 1;
        self.selector = ComponentHealth::Unhealthy { clean_probes: 0 };
    }

    /// Reports a router failure.
    pub fn report_router_failure(&mut self) {
        self.failures += 1;
        self.router = ComponentHealth::Unhealthy { clean_probes: 0 };
    }

    /// One health-daemon tick: a successful probe of each unhealthy
    /// component; recovery after `recovery_probes` consecutive successes.
    pub fn probe_tick(&mut self) {
        for component in [&mut self.selector, &mut self.router] {
            if let ComponentHealth::Unhealthy { clean_probes } = component {
                *clean_probes += 1;
                if *clean_probes >= self.recovery_probes {
                    *component = ComponentHealth::Healthy;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_healthy() {
        let f = FailoverState::default();
        assert!(f.selector_healthy());
        assert!(f.router_healthy());
        assert_eq!(f.failures(), 0);
    }

    #[test]
    fn failure_marks_unhealthy_and_counts() {
        let mut f = FailoverState::default();
        f.report_selector_failure();
        assert!(!f.selector_healthy());
        assert!(f.router_healthy());
        f.report_router_failure();
        assert!(!f.router_healthy());
        assert_eq!(f.failures(), 2);
    }

    #[test]
    fn recovery_after_clean_probes() {
        let mut f = FailoverState::default();
        f.report_selector_failure();
        f.probe_tick();
        f.probe_tick();
        assert!(!f.selector_healthy(), "needs 3 clean probes");
        f.probe_tick();
        assert!(f.selector_healthy());
    }

    #[test]
    fn model_health_marks_are_idempotent_and_counted() {
        use ic_llmsim::ModelId;
        let mut f = FailoverState::default();
        assert!(f.model_healthy(ModelId(0)));
        assert_eq!(f.down_models(), 0);
        f.set_model_healthy(ModelId(1), false);
        f.set_model_healthy(ModelId(1), false); // Idempotent.
        assert!(!f.model_healthy(ModelId(1)));
        assert!(f.model_healthy(ModelId(0)));
        assert_eq!(f.down_models(), 1);
        assert_eq!(f.failures(), 1, "re-marking down is not a new failure");
        f.set_model_healthy(ModelId(0), false);
        assert_eq!(f.down_models(), 2);
        f.set_model_healthy(ModelId(1), true);
        f.set_model_healthy(ModelId(1), true); // Idempotent.
        assert!(f.model_healthy(ModelId(1)));
        assert_eq!(f.down_models(), 1);
        assert_eq!(f.failures(), 2);
    }

    #[test]
    fn new_failure_resets_recovery_progress() {
        let mut f = FailoverState::default();
        f.report_router_failure();
        f.probe_tick();
        f.probe_tick();
        f.report_router_failure();
        f.probe_tick();
        assert!(!f.router_healthy(), "progress must reset on re-failure");
        f.probe_tick();
        f.probe_tick();
        assert!(f.router_healthy());
    }
}
