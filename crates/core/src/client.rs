//! The Figure 6 client API.
//!
//! ```python
//! client = IC_cacheClient(config=generation_config)
//! response = client.generate(requests)
//! client.update_cache(requests, response)
//! client.stop()
//! ```
//!
//! The Rust client wraps [`IcCacheSystem`] behind a mutex so callers can
//! share it across threads, mirroring the client-session model of the
//! paper's prototype.

use ic_llmsim::{GenOutcome, ModelId, Request};
use parking_lot::Mutex;

use crate::config::IcCacheConfig;
use crate::prompt::render_prompt;
use crate::system::IcCacheSystem;

/// A response returned by [`IcCacheClient::generate`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Which model produced the response.
    pub model: ModelId,
    /// Whether the request was offloaded from the primary model.
    pub offloaded: bool,
    /// The rendered prompt that was (virtually) sent.
    pub prompt: String,
    /// Generation outcome (tokens, latency, latent quality for eval).
    pub outcome: GenOutcome,
}

/// A client session to the IC-Cache service.
pub struct IcCacheClient {
    system: Mutex<IcCacheSystem>,
    stopped: Mutex<bool>,
    clock: Mutex<f64>,
}

impl IcCacheClient {
    /// Creates a client session (Fig. 6 line 5).
    pub fn new(config: IcCacheConfig) -> Self {
        Self {
            system: Mutex::new(IcCacheSystem::new(config)),
            stopped: Mutex::new(false),
            clock: Mutex::new(0.0),
        }
    }

    /// Pre-populates the example cache (Appendix A.4 initialization).
    pub fn seed_examples(&self, examples: Vec<ic_llmsim::Example>) {
        let now = *self.clock.lock();
        self.system.lock().seed_examples(examples, now);
    }

    /// Generates responses for a batch of requests (Fig. 6 line 8).
    ///
    /// # Panics
    ///
    /// Panics if called after [`IcCacheClient::stop`].
    pub fn generate(&self, requests: &[Request]) -> Vec<Response> {
        assert!(!*self.stopped.lock(), "client session is stopped");
        let mut system = self.system.lock();
        requests
            .iter()
            .map(|r| {
                let out = system.serve(r);
                let examples = out.selection.resolve(system.manager().cache());
                let prompt = if out.offloaded {
                    render_prompt(r, &examples)
                } else {
                    render_prompt(r, &[])
                };
                Response {
                    model: out.model,
                    offloaded: out.offloaded,
                    prompt,
                    outcome: out.outcome,
                }
            })
            .collect()
    }

    /// Registers request–response pairs into the cache (Fig. 6 line 11).
    /// Pairs are admitted through the privacy policy; rejected pairs are
    /// skipped silently.
    pub fn update_cache(&self, requests: &[Request], responses: &[Response]) {
        let now = *self.clock.lock();
        let mut system = self.system.lock();
        for (r, resp) in requests.iter().zip(responses) {
            let _ = system.update_cache(r, &resp.outcome, resp.model, now);
        }
    }

    /// Advances the client's logical clock (seconds) — drives decay and
    /// maintenance timing in long-running sessions.
    pub fn advance_clock(&self, seconds: f64) {
        *self.clock.lock() += seconds.max(0.0);
    }

    /// Runs one offline maintenance cycle (replay + eviction).
    pub fn run_maintenance(&self) -> crate::system::MaintenanceReport {
        let now = *self.clock.lock();
        self.system.lock().run_maintenance(now)
    }

    /// Feeds a load observation to the router.
    pub fn observe_load(&self, rps: f64) {
        self.system.lock().observe_load(rps);
    }

    /// Number of cached examples.
    pub fn cached_examples(&self) -> usize {
        self.system.lock().cached_examples()
    }

    /// Fraction of served requests that were offloaded.
    pub fn offload_ratio(&self) -> f64 {
        self.system.lock().offload_ratio()
    }

    /// Ends the session (Fig. 6 line 12). Further `generate` calls panic.
    pub fn stop(&self) {
        *self.stopped.lock() = true;
    }

    /// Direct system access for experiments that need internals.
    pub fn with_system<T>(&self, f: impl FnOnce(&mut IcCacheSystem) -> T) -> T {
        f(&mut self.system.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn client_with_examples() -> (IcCacheClient, WorkloadGenerator) {
        let config = IcCacheConfig::gemma_pair();
        let large = config.catalog.by_name("gemma-2-27b").unwrap();
        let mut wg = WorkloadGenerator::new(Dataset::MsMarco, 161);
        let examples =
            wg.generate_examples(300, &ModelSpec::gemma_2_27b(), large, &Generator::new());
        let client = IcCacheClient::new(config);
        client.seed_examples(examples);
        (client, wg)
    }

    #[test]
    fn fig6_workflow_round_trips() {
        let (client, mut wg) = client_with_examples();
        let requests = wg.generate_requests(10);
        let responses = client.generate(&requests);
        assert_eq!(responses.len(), 10);
        let before = client.cached_examples();
        client.update_cache(&requests, &responses);
        assert!(client.cached_examples() >= before);
        client.stop();
    }

    #[test]
    fn responses_carry_rendered_prompts() {
        let (client, mut wg) = client_with_examples();
        let requests = wg.generate_requests(5);
        for (r, resp) in requests.iter().zip(client.generate(&requests)) {
            assert!(resp.prompt.contains(&r.text));
            if resp.offloaded && !resp.prompt.contains("[Example 1]") {
                // Offloaded with an empty selection is legal (no useful
                // examples found); otherwise the prompt embeds examples.
                continue;
            }
        }
    }

    #[test]
    #[should_panic(expected = "stopped")]
    fn generate_after_stop_panics() {
        let (client, mut wg) = client_with_examples();
        client.stop();
        let _ = client.generate(&wg.generate_requests(1));
    }

    #[test]
    fn clock_advances_monotonically() {
        let (client, _) = client_with_examples();
        client.advance_clock(5.0);
        client.advance_clock(-10.0); // Negative deltas are ignored.
        client.advance_clock(1.0);
        let report = client.run_maintenance();
        assert_eq!(report.evicted, 0);
    }
}
