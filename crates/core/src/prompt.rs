//! Prompt assembly (Appendix A.1, Figures 23–25).
//!
//! The exact templates from the paper: the bare system prompt (Fig. 23),
//! the in-context variant with the relevance/quality/helpfulness guidance
//! and the repeated instruction (Fig. 24), and the autorater's
//! side-by-side evaluation prompt (Fig. 25).

use ic_llmsim::{Example, Request};

/// System preamble shared by both generation templates (Fig. 23/24).
const PREAMBLE: &str = "[System]\n\
You are a helpful AI Assistant that follows users' instructions carefully. \
Write a response that appropriately completes the request. Provide necessary \
details or explanations if that helps to exceed the user's expectations.";

/// Example-usage guidance of the in-context template (Fig. 24).
const IC_GUIDANCE: &str = "Below are examples of detailed instructions and responses. When a user gives \
you an instruction, consider the following:\n\
**Relevance: Do the examples directly relate to the user's specific task or \
question? If not, focus on completing the user's request without relying on the \
examples.\n\
**Quality: Do the examples demonstrate excellent explanations, detail, and \
clarity? If so, you may follow their format and style to improve your own \
response.\n\
**Helpfulness: Do the examples provide helpful information that is relevant to \
the user's instruction? If so, you may use the information in the examples to \
help you complete the user's instruction.";

/// Closing reminder of the in-context template (Fig. 24).
const IC_REMINDER: &str = "Below is an instruction that describes a task. Write a response that \
appropriately completes the request. Provide necessary details or explanations \
if that helps to exceed the user's expectation. Remember: Your primary goal is \
to understand the user's instruction and complete the task with informative \
detail. The examples are resources to guide you, not strict templates to \
follow. However, you can refer to and follow the examples if the user's \
instruction is very similar to the examples.";

/// Renders the full generation prompt for a request, with or without
/// in-context examples.
pub fn render_prompt(request: &Request, examples: &[&Example]) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(PREAMBLE);
    out.push_str("\n\nBelow is an instruction that describes a task:\n");
    out.push_str(&request.text);
    if examples.is_empty() {
        return out;
    }
    out.push_str("\n\n");
    out.push_str(IC_GUIDANCE);
    out.push_str("\n\n");
    for (i, e) in examples.iter().enumerate() {
        out.push_str(&format!(
            "[Example {}]\nInstruction: {}\nResponse: {}\n\n",
            i + 1,
            e.request_text,
            e.response_text
        ));
    }
    out.push_str(IC_REMINDER);
    out.push_str("\n\nBelow is an instruction that describes a task again:\n");
    out.push_str(&request.text);
    out
}

/// Renders the autorater's side-by-side evaluation prompt (Fig. 25).
pub fn autorater_prompt(question: &str, response_a: &str, response_b: &str) -> String {
    format!(
        "[System]\n\
Please act as an impartial judge and evaluate the overall quality of the \
responses provided by two AI assistants to the user question displayed below. \
You should choose the assistant that follows the user's instructions and \
answers the user's question better. Your evaluation should consider factors \
such as instruction following, factuality, helpfulness, depth, creativity, and \
level of necessary details of their responses. Avoid any position biases and \
ensure that the order in which the responses were presented does not influence \
your decision. Do not allow the length of the responses to influence your \
evaluation. Do not favor certain names of the assistants. Be as objective as \
possible.\n\n\
You should format as follows:\n\
[Rationale]: Placeholder for the short rationale of the score. (less than 200 \
words)\n\
[Score]: Placeholder for the score. This should be -3, -2, -1, 0, 1, 2, or 3.\n\n\
[Question]: {question}\n\
[Assistant A]: {response_a}\n\
[Assistant B]: {response_b}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelId, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn fixture() -> (Request, Vec<Example>) {
        let mut wg = WorkloadGenerator::new(Dataset::Alpaca, 141);
        let exs = wg.generate_examples(3, &ModelSpec::gemma_2_27b(), ModelId(0), &Generator::new());
        let r = wg.generate_requests(1).pop().unwrap();
        (r, exs)
    }

    #[test]
    fn bare_prompt_has_no_example_guidance() {
        let (r, _) = fixture();
        let p = render_prompt(&r, &[]);
        assert!(p.contains("[System]"));
        assert!(p.contains(&r.text));
        assert!(!p.contains("**Relevance"));
        assert!(!p.contains("[Example"));
    }

    #[test]
    fn ic_prompt_contains_guidance_examples_and_repeats_instruction() {
        let (r, exs) = fixture();
        let refs: Vec<&Example> = exs.iter().collect();
        let p = render_prompt(&r, &refs);
        assert!(p.contains("**Relevance"));
        assert!(p.contains("**Quality"));
        assert!(p.contains("**Helpfulness"));
        assert!(p.contains("[Example 1]"));
        assert!(p.contains("[Example 3]"));
        for e in &exs {
            assert!(p.contains(&e.request_text));
            assert!(p.contains(&e.response_text));
        }
        // The instruction appears twice (Fig. 24 repeats it at the end).
        assert_eq!(p.matches(&r.text).count(), 2);
    }

    #[test]
    fn ic_prompt_is_longer_than_bare() {
        let (r, exs) = fixture();
        let refs: Vec<&Example> = exs.iter().collect();
        assert!(render_prompt(&r, &refs).len() > render_prompt(&r, &[]).len() + 200);
    }

    #[test]
    fn autorater_prompt_embeds_both_responses() {
        let p = autorater_prompt("why is the sky blue", "answer one", "answer two");
        assert!(p.contains("impartial judge"));
        assert!(p.contains("answer one"));
        assert!(p.contains("answer two"));
        assert!(p.contains("-3, -2, -1, 0, 1, 2, or 3"));
    }
}
