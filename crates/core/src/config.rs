//! System configuration.

use ic_llmsim::{Catalog, Generator, ModelId};
use ic_manager::ManagerConfig;
use ic_router::RouterConfig;
use ic_selector::SelectorConfig;

/// Full IC-Cache configuration: which models serve, and the three
/// components' knobs.
#[derive(Debug)]
pub struct IcCacheConfig {
    /// The model catalog.
    pub catalog: Catalog,
    /// Candidate serving models (router arms). Must be non-empty.
    pub models: Vec<ModelId>,
    /// The "primary" (largest/most capable) model: requests routed to it
    /// are NOT augmented with examples; offloaded requests are
    /// (Algorithm 1: "prepend examples to the request if offloading
    /// occurs").
    pub primary: ModelId,
    /// Example Selector knobs.
    pub selector: SelectorConfig,
    /// Request Router knobs.
    pub router: RouterConfig,
    /// Example Manager knobs.
    pub manager: ManagerConfig,
    /// Generation simulator (latent mechanics).
    pub generator: Generator,
    /// Probability that a served request yields quality feedback even
    /// without the router's uncertainty gate (production systems sample
    /// ~1%, §4.1; experiments use more to converge faster).
    pub feedback_sample_rate: f64,
    /// RNG seed for the system's own stochastic choices.
    pub seed: u64,
}

impl IcCacheConfig {
    /// A two-model configuration over the named small/large pair.
    ///
    /// # Panics
    ///
    /// Panics if either name is missing from the standard catalog.
    pub fn pair(small: &str, large: &str) -> Self {
        let catalog = Catalog::standard();
        let small_id = catalog
            .by_name(small)
            .unwrap_or_else(|| panic!("unknown model {small}"));
        let large_id = catalog
            .by_name(large)
            .unwrap_or_else(|| panic!("unknown model {large}"));
        Self {
            catalog,
            models: vec![small_id, large_id],
            primary: large_id,
            selector: SelectorConfig::default(),
            router: RouterConfig::default(),
            manager: ManagerConfig::default(),
            generator: Generator::new(),
            feedback_sample_rate: 0.3,
            seed: 0x1C_CAC4E,
        }
    }

    /// Gemma-2-2B offloading from Gemma-2-27B (the paper's main open
    /// pairing).
    pub fn gemma_pair() -> Self {
        Self::pair("gemma-2-2b", "gemma-2-27b")
    }

    /// Gemini-1.5-Flash offloading from Gemini-1.5-Pro.
    pub fn gemini_pair() -> Self {
        Self::pair("gemini-1.5-flash", "gemini-1.5-pro")
    }

    /// Qwen-2.5-7B offloading from DeepSeek-R1.
    pub fn qwen_deepseek_pair() -> Self {
        Self::pair("qwen-2.5-7b", "deepseek-r1")
    }

    /// Phi-3-mini offloading from Phi-3-medium.
    pub fn phi_pair() -> Self {
        Self::pair("phi-3-mini", "phi-3-medium")
    }

    /// The small (non-primary) models.
    pub fn offload_models(&self) -> Vec<ModelId> {
        self.models
            .iter()
            .copied()
            .filter(|&m| m != self.primary)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_resolve_models() {
        for cfg in [
            IcCacheConfig::gemma_pair(),
            IcCacheConfig::gemini_pair(),
            IcCacheConfig::qwen_deepseek_pair(),
            IcCacheConfig::phi_pair(),
        ] {
            assert_eq!(cfg.models.len(), 2);
            assert!(cfg.models.contains(&cfg.primary));
            assert_eq!(cfg.offload_models().len(), 1);
            // Primary is the pricier member.
            let off = cfg.offload_models()[0];
            assert!(
                cfg.catalog.get(cfg.primary).cost_per_1k_tokens
                    > cfg.catalog.get(off).cost_per_1k_tokens
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown model")]
    fn unknown_name_panics() {
        let _ = IcCacheConfig::pair("nope", "gemma-2-27b");
    }
}
