//! The assembled IC-Cache system: Algorithm 1's `ServeRequests`.

use ic_llmsim::{
    Example, ExampleId, ExampleStore, GenOutcome, GenSetup, ModelId, Request, Skill, SkillMix,
};
use ic_manager::ExampleManager;
use ic_router::RequestRouter;
use ic_selector::{ExampleSelector, ProxyFeatures, Selection};
use ic_stats::Ema;
use ic_stats::rng::rng_from_seed;
use rand::RngExt;
use rand::rngs::StdRng;
use std::collections::HashMap;

use crate::config::IcCacheConfig;
use crate::failover::FailoverState;
use crate::frontend::FrontEnd;

/// The outcome of serving one request.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The request served.
    pub request_id: ic_llmsim::RequestId,
    /// The model that served it.
    pub model: ModelId,
    /// Whether the request was offloaded (served by a non-primary model).
    pub offloaded: bool,
    /// The examples that were prepended (empty on the primary path).
    pub selection: Selection,
    /// The generation result. `outcome.quality` is latent ground truth —
    /// evaluation code may read it; the system itself only used feedback.
    pub outcome: GenOutcome,
    /// Whether this request was tagged for preference feedback.
    pub solicited_feedback: bool,
    /// The load bias that was active at decision time.
    pub applied_bias: f64,
}

/// Report from one maintenance cycle.
#[derive(Debug, Default)]
pub struct MaintenanceReport {
    /// Examples replayed (best-of-n refinement).
    pub replayed: usize,
    /// Total quality improvement from replay.
    pub replay_improvement: f64,
    /// Examples evicted by the knapsack policy.
    pub evicted: usize,
}

/// The IC-Cache serving system (single-process reference implementation;
/// the paper's deployment shards these components across gRPC services,
/// §5).
pub struct IcCacheSystem {
    config: IcCacheConfig,
    selector: ExampleSelector,
    /// The (possibly replicated) router tier; replica 0 is the primary
    /// the single-router accessors expose.
    frontend: FrontEnd,
    manager: ExampleManager,
    failover: FailoverState,
    /// EMA of feedback quality for *bare* (unaugmented) servings per
    /// model; the baseline against which per-example utility labels are
    /// computed.
    bare_quality: HashMap<ModelId, Ema>,
    /// Pending preference comparisons: (request snapshot, utilities,
    /// chosen, second).
    rng: StdRng,
    next_example_id: u64,
    served: u64,
    offloaded: u64,
    /// Normalized per-model costs, precomputed at build time — the
    /// feedback path used to rebuild the whole cost vector per call.
    cost_norm: HashMap<ModelId, f64>,
}

impl std::fmt::Debug for IcCacheSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IcCacheSystem")
            .field("served", &self.served)
            .field("offloaded", &self.offloaded)
            .field("cached_examples", &self.manager.cache().len())
            .finish()
    }
}

impl IcCacheSystem {
    /// Builds the system from a configuration.
    pub fn new(config: IcCacheConfig) -> Self {
        let selector = ExampleSelector::new(config.selector.clone());
        let router = RequestRouter::new(
            config.models.clone(),
            &config.catalog,
            64,
            config.router.clone(),
        );
        let manager = ExampleManager::new(config.manager.clone());
        let rng = rng_from_seed(config.seed);
        let cost_norm = config
            .models
            .iter()
            .map(|&m| (m, normalized_cost(&config, m)))
            .collect();
        Self {
            selector,
            frontend: FrontEnd::new(router),
            manager,
            failover: FailoverState::default(),
            bare_quality: HashMap::new(),
            rng,
            next_example_id: 0x1000_0000,
            served: 0,
            offloaded: 0,
            cost_norm,
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IcCacheConfig {
        &self.config
    }

    /// The failover state (fault-injection hooks for tests, §5).
    pub fn failover_mut(&mut self) -> &mut FailoverState {
        &mut self.failover
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Fraction of requests offloaded off the primary model.
    pub fn offload_ratio(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.offloaded as f64 / self.served as f64
        }
    }

    /// Number of cached examples.
    pub fn cached_examples(&self) -> usize {
        self.manager.cache().len()
    }

    /// Read access to the manager (experiments inspect cache stats).
    pub fn manager(&self) -> &ExampleManager {
        &self.manager
    }

    /// Read access to the selector.
    pub fn selector(&self) -> &ExampleSelector {
        &self.selector
    }

    /// Read access to the primary router (replica 0 of the front end).
    pub fn router(&self) -> &RequestRouter {
        self.frontend.router(0)
    }

    /// Read access to the replicated router tier.
    pub fn front_end(&self) -> &FrontEnd {
        &self.frontend
    }

    /// Mutable access to the router tier (the engine feeds per-replica
    /// load observations and reshapes the tier between runs).
    pub fn front_end_mut(&mut self) -> &mut FrontEnd {
        &mut self.frontend
    }

    /// Feeds a serving-load observation (requests/second) to every
    /// router replica — the single-view path used by warm-up loops and
    /// experiments outside the event-driven engine. The engine itself
    /// feeds per-replica observations through
    /// [`FrontEnd::observe_arrival_load`] /
    /// [`FrontEnd::observe_completion`].
    pub fn observe_load(&mut self, rps: f64) {
        self.frontend.observe_load_all(rps);
    }

    /// One gossip round of the router tier at simulation time `now`
    /// (no-op with a single replica), returning the round's
    /// merge/staleness delta. See [`crate::frontend`].
    pub fn run_gossip(&mut self, now: f64) -> ic_router::GossipRoundReport {
        self.frontend.gossip_round(now)
    }

    /// Runs the selection step only (no routing, no generation, no
    /// learning) — used by ablations and baselines that reuse the example
    /// cache without the router.
    pub fn with_selection(&self, request: &Request) -> Selection {
        let offload_model = self
            .config
            .offload_models()
            .first()
            .copied()
            .unwrap_or(self.config.primary);
        let spec = self.config.catalog.get(offload_model);
        self.selector.select(request, self.manager.cache(), spec)
    }

    /// Stage-1-only retrieval (relevance top-k) — the "w/o stage-2"
    /// ablation path of Fig. 16.
    pub fn stage1_ids(&self, request: &Request, k: usize) -> Vec<ExampleId> {
        self.selector
            .stage1(request)
            .into_iter()
            .take(k)
            .map(|(id, _)| id)
            .collect()
    }

    /// Replaces the router configuration (rebuilding every replica's
    /// bandit from a fresh prior) — used by the Fig. 13
    /// offload-aggressiveness sweep. Call before warm-up: learned state
    /// is discarded; the replica count and gossip tuning of the tier
    /// are preserved.
    pub fn set_router_config(&mut self, cfg: ic_router::RouterConfig) {
        let replicas = self.frontend.num_replicas();
        let gossip = self.frontend.gossip_config();
        let mut frontend = FrontEnd::new(RequestRouter::new(
            self.config.models.clone(),
            &self.config.catalog,
            64,
            cfg.clone(),
        ));
        frontend.set_gossip_config(gossip);
        if replicas > 1 {
            frontend.reconfigure(replicas, crate::frontend::DEFAULT_LATENCY_ALPHA);
        }
        self.frontend = frontend;
        self.config.router = cfg;
    }

    /// Seeds the example cache from a pre-generated bank (Appendix A.4's
    /// example-pool initialization) and indexes admitted entries.
    pub fn seed_examples(&mut self, examples: Vec<Example>, now: f64) {
        // Admission never consults the index and indexing never consults
        // the manager, so admitting the whole bank first and indexing it
        // in one bulk build is state-identical to the per-example
        // admit/index interleaving — and lets the index fan the embed and
        // assignment work out over its `setup_threads`.
        let mut admitted = Vec::with_capacity(examples.len());
        for e in examples {
            let embedding = e.embedding.clone();
            if let Some(id) = self.manager.admit(e, now) {
                admitted.push((id, embedding));
            }
        }
        self.selector.index_examples(admitted);
    }

    /// Algorithm 1 `ServeRequests`: select examples, route, generate,
    /// learn, manage.
    pub fn serve(&mut self, request: &Request) -> ServeOutcome {
        self.serve_with_stage1(request, None)
    }

    /// One multi-query stage-1 probe over the example index for a batch
    /// of requests — the engine's cross-request batching hook. Respects
    /// selector failover (empty candidate lists when bypassed, matching
    /// what [`IcCacheSystem::serve`] would do). The results feed
    /// [`IcCacheSystem::serve_with_stage1`]; they stay valid until the
    /// index changes (an example admission, eviction, or rebalance).
    pub fn stage1_batch(&self, requests: &[&Request]) -> Vec<Vec<(ExampleId, f64)>> {
        if !self.failover.selector_healthy() {
            return vec![Vec::new(); requests.len()];
        }
        self.selector.stage1_batch(requests)
    }

    /// [`IcCacheSystem::serve`] with the stage-1 candidates optionally
    /// precomputed by [`IcCacheSystem::stage1_batch`]. Stage 2, routing,
    /// generation and feedback run exactly as in the sequential path —
    /// in particular the proxy and threshold state a batch member's
    /// feedback updates is seen by the *next* member's stage 2, so a
    /// batched probe plus per-request servings is byte-identical to
    /// serving the batch one by one.
    ///
    /// `stage1` must be what `selector.stage1(request)` would return
    /// against the current index; pass `None` to compute it here.
    pub fn serve_with_stage1(
        &mut self,
        request: &Request,
        stage1: Option<Vec<(ExampleId, f64)>>,
    ) -> ServeOutcome {
        // 1. Example Retriever (bypassed when unhealthy, §5).
        //    Examples target the cheapest offload candidate; the router
        //    sees their predicted utilities as context.
        let selection = if self.failover.selector_healthy() {
            let spec = self.config.catalog.get(self.offload_target());
            match stage1 {
                Some(candidates) => self.selector.select_with_stage1(
                    request,
                    candidates,
                    self.manager.cache(),
                    spec,
                ),
                None => self.selector.select(request, self.manager.cache(), spec),
            }
        } else {
            Selection::empty(0.0)
        };
        self.serve_routed(request, selection)
    }

    /// [`IcCacheSystem::serve`] with the whole selection precomputed by
    /// [`IcCacheSystem::preselect`] — the replay engine's windowed
    /// look-ahead hook. Routing, generation, and feedback run exactly as
    /// in the sequential path.
    ///
    /// `selection` must be what the selection step would produce right
    /// now, i.e. [`IcCacheSystem::preselect`] evaluated against the
    /// current index, proxy, threshold, and store (the selector's
    /// `index_epoch`/`learn_epoch` counters certify that window). Under
    /// that contract the serving is byte-identical to
    /// [`IcCacheSystem::serve`]: selection is read-only and draws no
    /// randomness, so hoisting it cannot shift any RNG stream or
    /// learning update.
    pub fn serve_with_selection(
        &mut self,
        request: &Request,
        selection: Selection,
    ) -> ServeOutcome {
        // Mirror the failover gate: a bypassed selector serves empty
        // regardless of what was precomputed.
        let selection = if self.failover.selector_healthy() {
            selection
        } else {
            Selection::empty(0.0)
        };
        self.serve_routed(request, selection)
    }

    /// [`IcCacheSystem::serve`] for a failover *retry* of a request that
    /// already went through the tier once. The retry recomputes a fresh
    /// selection and routing decision (the index and the bandit may have
    /// moved since the original serving, and the original choice's pool
    /// is down) and generates — but it records *no* serving statistics
    /// and absorbs *no* feedback: `served`/`offloaded` stay untouched,
    /// the router tier's per-replica decision counters are not bumped
    /// ([`crate::frontend::FrontEnd::route_retry`]), no preference
    /// solicitation happens, no reward/proxy/cache-gain update runs, and
    /// example accesses are not re-recorded. One logical request leaves
    /// exactly one set of selector/router stats behind, however many
    /// times failover re-enqueues it.
    pub fn serve_retry(&mut self, request: &Request) -> ServeOutcome {
        let selection = if self.failover.selector_healthy() {
            let spec = self.config.catalog.get(self.offload_target());
            self.selector.select(request, self.manager.cache(), spec)
        } else {
            Selection::empty(0.0)
        };
        // Routing mirrors `serve_routed` (same health override), minus
        // the decision counting and feedback solicitation.
        let (chosen, bias) = if self.failover.router_healthy() {
            let (d, _replica) =
                self.frontend
                    .route_retry(request, &selection.predicted_utility, &mut self.rng);
            let chosen = if self.failover.model_healthy(d.chosen) {
                d.chosen
            } else {
                d.scores
                    .iter()
                    .filter(|&&(m, _)| self.failover.model_healthy(m))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|&(m, _)| m)
                    .unwrap_or(d.chosen)
            };
            (chosen, d.applied_bias)
        } else {
            (self.config.primary, 0.0)
        };
        let offloadable = chosen != self.config.primary;
        let example_refs: Vec<&Example> = if offloadable {
            selection.resolve(self.manager.cache())
        } else {
            Vec::new()
        };
        let setup = GenSetup {
            examples: example_refs,
            ..GenSetup::default()
        };
        let spec = self.config.catalog.get(chosen);
        let outcome = self
            .config
            .generator
            .generate(spec, request, &setup, &mut self.rng);
        ServeOutcome {
            request_id: request.id,
            model: chosen,
            offloaded: offloadable,
            selection,
            outcome,
            solicited_feedback: false,
            applied_bias: bias,
        }
    }

    /// The selection step alone, over caller-supplied stage-1
    /// candidates, without serving — read-only. Pairs with
    /// [`IcCacheSystem::serve_with_selection`].
    pub fn preselect(&self, request: &Request, candidates: Vec<(ExampleId, f64)>) -> Selection {
        if !self.failover.selector_healthy() {
            return Selection::empty(0.0);
        }
        let spec = self.config.catalog.get(self.offload_target());
        self.selector
            .select_with_stage1(request, candidates, self.manager.cache(), spec)
    }

    /// The offload model selections are computed against (examples
    /// target the cheapest offload candidate).
    fn offload_target(&self) -> ModelId {
        self.config
            .offload_models()
            .first()
            .copied()
            .unwrap_or(self.config.primary)
    }

    /// Steps 2–4 of `ServeRequests` — routing, generation, feedback —
    /// shared by every serve entry point above.
    fn serve_routed(&mut self, request: &Request, selection: Selection) -> ServeOutcome {
        self.served += 1;

        // 2. Request Router (bypassed when unhealthy: straight to
        //    primary). The decision comes from the replica that owns the
        //    request id; a chosen model whose pool is marked down by the
        //    failover state is overridden by the best-scoring healthy arm
        //    (retries after a pool failover must not land back on the
        //    dead pool), falling back to the original choice only when
        //    every arm is down.
        let (chosen, solicit, second, bias) = if self.failover.router_healthy() {
            let (d, _replica) =
                self.frontend
                    .route(request, &selection.predicted_utility, &mut self.rng);
            let chosen = if self.failover.model_healthy(d.chosen) {
                d.chosen
            } else {
                d.scores
                    .iter()
                    .filter(|&&(m, _)| self.failover.model_healthy(m))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|&(m, _)| m)
                    .unwrap_or(d.chosen)
            };
            // Preference solicitation only makes sense against a live,
            // *distinct* alternative: the health override may have moved
            // `chosen` onto the sampled second choice (a self-comparison
            // would record contradictory rewards on one arm), and a down
            // second choice cannot generate a comparison response.
            let (solicit, second) = match d.second_choice {
                Some(other)
                    if d.solicit_feedback
                        && other != chosen
                        && self.failover.model_healthy(other) =>
                {
                    (true, Some(other))
                }
                _ => (false, None),
            };
            (chosen, solicit, second, d.applied_bias)
        } else {
            (self.config.primary, false, None, 0.0)
        };
        let offloadable = chosen != self.config.primary;
        if offloadable {
            self.offloaded += 1;
        }

        // 3. Generate (examples only on the offload path).
        let example_refs: Vec<&Example> = if offloadable {
            selection.resolve(self.manager.cache())
        } else {
            Vec::new()
        };
        let used_ids: Vec<ExampleId> = example_refs.iter().map(|e| e.id).collect();
        let setup = GenSetup {
            examples: example_refs,
            ..GenSetup::default()
        };
        let spec = self.config.catalog.get(chosen);
        let outcome = self
            .config
            .generator
            .generate(spec, request, &setup, &mut self.rng);

        // 4. Learn from feedback. User feedback arrives for solicited
        //    requests and for a sampled fraction of the rest.
        let give_feedback = solicit || self.rng.random::<f64>() < self.config.feedback_sample_rate;
        if give_feedback {
            self.absorb_feedback(request, &selection, chosen, second, &outcome, &used_ids);
        }

        for id in &used_ids {
            self.manager.cache_mut().record_access(*id);
        }

        ServeOutcome {
            request_id: request.id,
            model: chosen,
            offloaded: offloadable,
            selection,
            outcome,
            solicited_feedback: solicit,
            applied_bias: bias,
        }
    }

    /// Feedback path: noisy user signal -> router reward, preference
    /// comparison, proxy labels, cache gain bookkeeping.
    fn absorb_feedback(
        &mut self,
        request: &Request,
        selection: &Selection,
        chosen: ModelId,
        second: Option<ModelId>,
        outcome: &GenOutcome,
        used_ids: &[ExampleId],
    ) {
        // Thumbs-style feedback: latent quality seen through noise.
        // Rewards and preferences are recorded only at the replica that
        // owns the request — peers learn of them through gossip.
        let fb = (outcome.quality + 0.1 * (self.rng.random::<f64>() - 0.5)).clamp(0.0, 1.0);
        self.frontend
            .record_reward(chosen, request, &selection.predicted_utility, fb);

        // Preference solicitation: generate with the sampled second choice
        // and record which the (simulated) user preferred.
        if let Some(other) = second {
            let other_spec = self.config.catalog.get(other);
            let other_setup = if other != self.config.primary {
                GenSetup {
                    examples: selection.resolve(self.manager.cache()),
                    ..GenSetup::default()
                }
            } else {
                GenSetup::bare()
            };
            let alt =
                self.config
                    .generator
                    .generate(other_spec, request, &other_setup, &mut self.rng);
            let alt_fb = (alt.quality + 0.1 * (self.rng.random::<f64>() - 0.5)).clamp(0.0, 1.0);
            if fb >= alt_fb {
                self.frontend.record_preference(
                    request,
                    &selection.predicted_utility,
                    chosen,
                    other,
                );
            } else {
                self.frontend.record_preference(
                    request,
                    &selection.predicted_utility,
                    other,
                    chosen,
                );
            }
        }

        let chosen_cost = self.cost_norm.get(&chosen).copied().unwrap_or(0.0);
        if used_ids.is_empty() {
            // Bare serving: update the per-model baseline.
            self.bare_quality
                .entry(chosen)
                .or_insert_with(|| Ema::new(0.1))
                .observe(fb);
        } else {
            // Augmented serving: attribute the lift over the bare baseline
            // to the used examples, proportionally to predicted utility.
            let baseline = self.bare_quality.get(&chosen).map_or(0.5, |e| e.value());
            let lift = (fb - baseline).max(0.0);
            // Attribute the lift to each example relative to the *best*
            // prediction (not the sum): under diminishing returns each
            // similar example's marginal utility is close to the full
            // per-example utility, so sum-normalization would shrink
            // labels by ~k and train the proxy below the selection
            // threshold (a cold-start death spiral).
            let max_pred: f64 = selection
                .predicted_utility
                .iter()
                .fold(0.0f64, |a, &b| a.max(b))
                .max(1e-6);
            let spec = self.config.catalog.get(chosen);
            for (id, pred) in selection.ids.iter().zip(&selection.predicted_utility) {
                let Some(example) = self.manager.cache().get_example(*id) else {
                    continue;
                };
                let label = (lift * (pred / max_pred).clamp(0.0, 1.0)).clamp(0.0, 1.0);
                let features = ProxyFeatures::extract(request, example, spec).as_array();
                self.selector.proxy_mut().update(&features, label);
                // Cache bookkeeping for the manager's policies.
                self.manager
                    .cache_mut()
                    .record_usage_feedback(*id, fb, chosen_cost);
                if chosen != self.config.primary && fb >= 0.5 {
                    // A successful offload this example enabled (§4.3).
                    self.manager.cache_mut().record_offload_gain(
                        *id,
                        0.0,
                        1.0 / selection.ids.len() as f64,
                    );
                }
            }
            // Threshold controller: efficiency gain of this serving =
            // cost saving (if offloaded and good) minus quality shortfall.
            let gain = if chosen != self.config.primary && fb >= baseline - 0.05 {
                1.0 - chosen_cost
            } else {
                0.0
            };
            self.selector
                .threshold_mut()
                .observe(selection.threshold_used, gain);
        }
    }

    /// Caches a served request–response pair (Fig. 6 `update_cache`).
    /// Returns the admitted example id, if admission passed.
    pub fn update_cache(
        &mut self,
        request: &Request,
        outcome: &GenOutcome,
        served_by: ModelId,
        now: f64,
    ) -> Option<ExampleId> {
        let id = ExampleId(self.next_example_id);
        self.next_example_id += 1;
        let example = Example {
            id,
            topic: request.topic,
            latent: request.latent.clone(),
            embedding: request.embedding.clone(),
            skills: request.skills,
            task: request.task,
            origin_difficulty: request.difficulty,
            request_text: request.text.clone(),
            response_text: render_response_text(request.topic, outcome.output_tokens),
            request_tokens: request.input_tokens,
            response_tokens: outcome.output_tokens,
            quality: outcome.quality,
            source_model: served_by,
            replay_count: 0,
        };
        let embedding = example.embedding.clone();
        let admitted = self.manager.admit(example, now)?;
        self.selector.index_example(admitted, embedding);
        Some(admitted)
    }

    /// One offline maintenance cycle: cost-aware replay on the primary
    /// model, then knapsack capacity enforcement (§4.3). Run during
    /// off-peak windows.
    pub fn run_maintenance(&mut self, now: f64) -> MaintenanceReport {
        let primary_spec = self.config.catalog.get(self.config.primary).clone();
        let replay = self
            .manager
            .run_replay(&primary_spec, &self.config.generator, &mut self.rng);
        let evicted = self.run_rebalance(now);
        MaintenanceReport {
            replayed: replay.replayed,
            replay_improvement: replay.total_improvement,
            evicted,
        }
    }

    /// Adjusts the example-cache byte budget at runtime; takes effect at
    /// the next maintenance or rebalance cycle.
    pub fn set_cache_capacity(&mut self, bytes: Option<usize>) {
        self.manager.set_capacity_bytes(bytes);
        self.config.manager.capacity_bytes = bytes;
    }

    /// Periodic cross-shard budget rebalance: enforces the byte budget
    /// through the manager's quantum-knapsack division and unindexes the
    /// evicted examples. Capacity-only maintenance — no replay — so an
    /// event-driven engine can run it far more often than
    /// [`IcCacheSystem::run_maintenance`]. Returns the eviction count.
    pub fn run_rebalance(&mut self, now: f64) -> usize {
        let evicted = self.manager.enforce_capacity(now);
        for id in &evicted {
            self.selector.unindex_example(*id);
        }
        evicted.len()
    }

    /// Serves a request with IC disabled (primary model, no examples) —
    /// the "w/o IC-Cache" baseline path used by experiments. Completion
    /// latency feeds the owning replica's load estimate through the same
    /// [`FrontEnd::observe_completion`] path as the engine's primary and
    /// failover-retry completions (a standalone zero-load serving has
    /// one job in flight, so Little's law reads `1 / latency`); the
    /// baseline path must not starve the load tracker the router biases
    /// on.
    pub fn serve_without_ic(&mut self, request: &Request, model: ModelId) -> GenOutcome {
        let spec = self.config.catalog.get(model);
        let outcome =
            self.config
                .generator
                .generate(spec, request, &GenSetup::bare(), &mut self.rng);
        let replica = self.frontend.replica_of(request.id);
        self.frontend
            .observe_completion(replica, outcome.latency.total(), 1);
        outcome
    }
}

/// Normalized cost of a model within the configured set.
fn normalized_cost(config: &IcCacheConfig, model: ModelId) -> f64 {
    let costs: Vec<f64> = config
        .models
        .iter()
        .map(|&m| config.catalog.get(m).cost_per_1k_tokens)
        .collect();
    let lo = costs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = costs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !(hi > lo) {
        return 0.0;
    }
    (config.catalog.get(model).cost_per_1k_tokens - lo) / (hi - lo)
}

/// Placeholder response text with realistic byte footprint.
fn render_response_text(topic: usize, tokens: u32) -> String {
    let mut words = Vec::with_capacity(tokens as usize);
    for k in 0..tokens {
        words.push(format!("t{topic}r{}", k % 64));
    }
    words.join(" ")
}

/// Convenience for evaluation code: a request's effective skill demand as
/// seen by a model (re-exported to keep experiments terse).
pub fn effective_capability(skills: &SkillMix, capability: &[f64; Skill::COUNT]) -> f64 {
    skills.weighted_score(capability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::{Generator, ModelSpec};
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn seeded_system(dataset: Dataset, n_examples: usize) -> (IcCacheSystem, WorkloadGenerator) {
        let config = IcCacheConfig::gemma_pair();
        let mut wg = WorkloadGenerator::new(dataset, 151);
        let large = config.catalog.by_name("gemma-2-27b").unwrap();
        let examples = wg.generate_examples(
            n_examples,
            &ModelSpec::gemma_2_27b(),
            large,
            &Generator::new(),
        );
        let mut system = IcCacheSystem::new(config);
        system.seed_examples(examples, 0.0);
        (system, wg)
    }

    #[test]
    fn serves_and_tracks_offload_ratio() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 500);
        for r in wg.generate_requests(200) {
            let out = system.serve(&r);
            assert!((0.0..=1.0).contains(&out.outcome.quality));
        }
        assert_eq!(system.served(), 200);
        let ratio = system.offload_ratio();
        assert!((0.0..=1.0).contains(&ratio));
    }

    #[test]
    fn offloaded_requests_carry_examples_primary_does_not() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 800);
        let mut saw_offload = false;
        let mut saw_primary = false;
        for r in wg.generate_requests(300) {
            let out = system.serve(&r);
            if out.offloaded {
                saw_offload = true;
            } else {
                saw_primary = true;
                // Primary path is bare: no IC template overhead.
                assert_eq!(out.outcome.examples_dropped, 0);
            }
        }
        assert!(saw_offload || saw_primary, "served nothing?");
    }

    #[test]
    fn online_serving_improves_offloaded_quality_over_time() {
        // As the proxy and router learn from feedback, augmented serving
        // should at least not degrade; assert the system keeps quality in
        // a sane band and learns to use examples.
        let (mut system, mut wg) = seeded_system(Dataset::NaturalQuestions, 1500);
        let mut early = Vec::new();
        let mut late = Vec::new();
        for (i, r) in wg.generate_requests(1000).iter().enumerate() {
            let out = system.serve(r);
            if i < 200 {
                early.push(out.outcome.quality);
            } else if i >= 800 {
                late.push(out.outcome.quality);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&late) > mean(&early) - 0.05,
            "quality regressed: {} -> {}",
            mean(&early),
            mean(&late)
        );
    }

    #[test]
    fn batched_stage1_serving_is_byte_identical_to_sequential() {
        // Two identically-seeded systems; one serves request by
        // request, the other precomputes stage-1 for groups of five via
        // the multi-query probe. Every outcome must match bitwise —
        // including feedback-driven proxy/threshold/router evolution
        // *within* a group, which only stage 1 may hoist out.
        let (mut seq, mut wg) = seeded_system(Dataset::MsMarco, 600);
        let (mut bat, _) = seeded_system(Dataset::MsMarco, 600);
        let requests = wg.generate_requests(60);
        for group in requests.chunks(5) {
            let refs: Vec<&Request> = group.iter().collect();
            let stage1 = bat.stage1_batch(&refs);
            for (r, s1) in group.iter().zip(stage1) {
                let a = seq.serve(r);
                let b = bat.serve_with_stage1(r, Some(s1));
                assert_eq!(a.model, b.model);
                assert_eq!(a.offloaded, b.offloaded);
                assert_eq!(a.solicited_feedback, b.solicited_feedback);
                assert_eq!(a.selection.ids, b.selection.ids);
                assert_eq!(a.selection.stage1_count, b.selection.stage1_count);
                for (x, y) in a
                    .selection
                    .predicted_utility
                    .iter()
                    .zip(&b.selection.predicted_utility)
                {
                    assert_eq!(x.to_bits(), y.to_bits());
                }
                assert_eq!(a.outcome.quality.to_bits(), b.outcome.quality.to_bits());
                assert_eq!(a.outcome.output_tokens, b.outcome.output_tokens);
                assert_eq!(
                    a.outcome.latency.total().to_bits(),
                    b.outcome.latency.total().to_bits()
                );
            }
        }
        assert_eq!(seq.served(), bat.served());
        assert_eq!(seq.offload_ratio(), bat.offload_ratio());
    }

    #[test]
    fn preselected_serving_is_byte_identical_to_sequential() {
        // serve_with_selection with a selection preselected from a
        // batched stage-1 probe must match plain serve() bitwise — the
        // contract the engine's windowed look-ahead is built on. The
        // selector's epochs certify the precompute window: no feedback
        // or index mutation happens between preselect and serve here.
        let (mut seq, mut wg) = seeded_system(Dataset::MsMarco, 600);
        let (mut pre, _) = seeded_system(Dataset::MsMarco, 600);
        let requests = wg.generate_requests(50);
        for r in &requests {
            let index_epoch = pre.selector().index_epoch();
            let learn_epoch = pre.selector().learn_epoch();
            let stage1 = pre.stage1_batch(&[r]).pop().unwrap();
            let sel = pre.preselect(r, stage1);
            assert_eq!(pre.selector().index_epoch(), index_epoch);
            assert_eq!(pre.selector().learn_epoch(), learn_epoch);
            let a = seq.serve(r);
            let b = pre.serve_with_selection(r, sel);
            assert_eq!(a.model, b.model);
            assert_eq!(a.offloaded, b.offloaded);
            assert_eq!(a.solicited_feedback, b.solicited_feedback);
            assert_eq!(a.selection.ids, b.selection.ids);
            assert_eq!(
                a.selection.threshold_used.to_bits(),
                b.selection.threshold_used.to_bits()
            );
            for (x, y) in a
                .selection
                .predicted_utility
                .iter()
                .zip(&b.selection.predicted_utility)
            {
                assert_eq!(x.to_bits(), y.to_bits());
            }
            assert_eq!(a.outcome.quality.to_bits(), b.outcome.quality.to_bits());
            assert_eq!(
                a.outcome.latency.total().to_bits(),
                b.outcome.latency.total().to_bits()
            );
        }
        assert_eq!(seq.served(), pre.served());
        assert_eq!(seq.offload_ratio(), pre.offload_ratio());
    }

    #[test]
    fn update_cache_grows_pool_and_index() {
        let (mut system, mut wg) = seeded_system(Dataset::Alpaca, 50);
        let before = system.cached_examples();
        let requests = wg.generate_requests(20);
        for r in &requests {
            let out = system.serve(r);
            system.update_cache(r, &out.outcome, out.model, 1.0);
        }
        assert!(system.cached_examples() > before);
        assert!(system.selector().indexed_count() >= system.cached_examples());
    }

    #[test]
    fn selector_failure_bypasses_examples() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 300);
        system.failover_mut().set_selector_healthy(false);
        for r in wg.generate_requests(20) {
            let out = system.serve(&r);
            assert!(out.selection.ids.is_empty(), "selector must be bypassed");
        }
    }

    #[test]
    fn router_failure_routes_to_primary() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 300);
        system.failover_mut().set_router_healthy(false);
        let primary = system.config().primary;
        for r in wg.generate_requests(20) {
            let out = system.serve(&r);
            assert_eq!(out.model, primary);
            assert!(!out.offloaded);
        }
    }

    #[test]
    fn down_model_routing_falls_back_to_best_healthy_arm() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 400);
        let offload = system.config().offload_models()[0];
        let primary = system.config().primary;
        // With every offload pool down, everything must serve on the
        // primary; with the primary down, nothing may land on it.
        system.failover_mut().set_model_healthy(offload, false);
        for r in wg.generate_requests(30) {
            let out = system.serve(&r);
            assert_eq!(out.model, primary, "down offload pool must be avoided");
        }
        system.failover_mut().set_model_healthy(offload, true);
        system.failover_mut().set_model_healthy(primary, false);
        for r in wg.generate_requests(30) {
            let out = system.serve(&r);
            assert_eq!(out.model, offload, "down primary pool must be avoided");
        }
        // All pools down: degrade to the router's original choice rather
        // than dropping the request.
        system.failover_mut().set_model_healthy(offload, false);
        for r in wg.generate_requests(5) {
            let out = system.serve(&r);
            assert!(out.model == primary || out.model == offload);
        }
    }

    #[test]
    fn replicated_tier_serves_and_spreads_decisions() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 500);
        system
            .front_end_mut()
            .reconfigure(4, crate::frontend::DEFAULT_LATENCY_ALPHA);
        for r in wg.generate_requests(200) {
            let _ = system.serve(&r);
        }
        let stats = system.front_end().stats();
        assert_eq!(stats.replicas, 4);
        assert_eq!(stats.decisions.iter().sum::<u64>(), 200);
        assert!(
            stats.decisions.iter().all(|&d| d > 0),
            "hash assignment should hit every replica: {:?}",
            stats.decisions
        );
        system.run_gossip(10.0);
        assert_eq!(system.front_end().stats().gossip_rounds, 1);
    }

    #[test]
    fn serve_without_ic_feeds_the_load_estimate() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 50);
        let primary = system.config().primary;
        assert_eq!(system.router().current_load(), 0.0);
        let r = wg.generate_requests(1).pop().unwrap();
        let out = system.serve_without_ic(&r, primary);
        let replica = system.front_end().replica_of(r.id);
        let est = system.front_end().load_estimate(replica);
        assert!(
            (est - 1.0 / out.latency.total()).abs() < 1e-9,
            "baseline completion must feed Little's law: {est}"
        );
    }

    #[test]
    fn maintenance_runs_replay_and_eviction() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 400);
        // Drive traffic so some examples earn replay-worthy G(e).
        for r in wg.generate_requests(300) {
            let _ = system.serve(&r);
        }
        // Constrain capacity to force eviction.
        let report = system.run_maintenance(3600.0);
        // With default (unbounded) config nothing must be evicted.
        assert_eq!(report.evicted, 0);
        assert!(report.replay_improvement >= 0.0);
    }

    #[test]
    fn overload_shifts_offloading_up() {
        let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 600);
        // Warm up the router with feedback at low load.
        for _ in 0..50 {
            system.observe_load(0.5);
        }
        for r in wg.generate_requests(300) {
            let _ = system.serve(&r);
        }
        let low_ratio = system.offload_ratio();
        // Now sustained overload.
        for _ in 0..300 {
            system.observe_load(50.0);
        }
        let before_served = system.served();
        let before_off = (system.offload_ratio() * before_served as f64) as u64;
        for r in wg.generate_requests(300) {
            let _ = system.serve(&r);
        }
        let after_off = (system.offload_ratio() * system.served() as f64) as u64;
        let overload_ratio = (after_off - before_off) as f64 / 300.0;
        assert!(
            overload_ratio > low_ratio,
            "overload should push offloading up: {low_ratio} -> {overload_ratio}"
        );
        assert!(
            overload_ratio > 0.8,
            "deep overload should offload most: {overload_ratio}"
        );
    }
}
