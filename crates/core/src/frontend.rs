//! The replicated front-end (router tier) of the serving system.
//!
//! The paper's deployment runs the Request Router as a horizontally
//! scaled service (§5): several router instances sit behind the request
//! ingress, each holding its *own* bandit posterior and load view,
//! learning only from the feedback of the requests it owns, and
//! converging with its peers through periodic gossip — never through a
//! shared mutable state. [`FrontEnd`] models exactly that:
//!
//! - **Deterministic assignment**: request `id` is owned by replica
//!   `split_mix64(id) % R`, so replays are byte-identical and a request's
//!   feedback always lands on the replica that routed it.
//! - **Per-replica state**: each replica wraps a full
//!   [`RequestRouter`] (bandit + load tracker + bias controller) plus the
//!   completion-latency EMA that drives the Little's-law load estimate.
//! - **Gossip rounds** ([`FrontEnd::gossip_round`]): bandit
//!   sufficient-statistic deltas travel the deterministic ring with
//!   per-hop staleness discounting, and load estimates blend by
//!   consensus (see `ic_router::gossip`).
//!
//! With one replica (the default) every request hashes to replica 0 and
//! the front end is behaviourally identical to the pre-refactor single
//! `RequestRouter` — byte-for-byte, which CI enforces on the e2e report.

use ic_llmsim::{ModelId, Request, RequestId};
use ic_router::gossip::{DeltaBatch, GossipConfig, GossipRoundReport};
use ic_router::{RequestRouter, RouteDecision};
use ic_stats::{Ema, split_mix64};
use rand::Rng;

/// Default smoothing of the per-replica completion-latency EMA (matches
/// the engine's `latency_ema_alpha` default).
pub const DEFAULT_LATENCY_ALPHA: f64 = 0.2;

/// One router replica: an independent bandit + load view, plus the
/// run-scoped counters the report surfaces.
#[derive(Debug, Clone)]
struct Replica {
    router: RequestRouter,
    /// EMA of observed end-to-end completion latency; feeds the
    /// Little's-law demand estimate at completion time.
    latency_ema: Ema,
    /// Routing decisions made by this replica (run-scoped).
    decisions: u64,
    /// Delta batches received last round, pending one more ring hop.
    inbox: Vec<DeltaBatch>,
}

impl Replica {
    fn new(router: RequestRouter, latency_alpha: f64) -> Self {
        Self {
            router,
            latency_ema: Ema::new(latency_alpha),
            decisions: 0,
            inbox: Vec::new(),
        }
    }
}

/// Aggregate statistics of the router tier (run-scoped, deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrontEndStats {
    /// Router replicas in the tier.
    pub replicas: usize,
    /// Routing decisions per replica, in replica order.
    pub decisions: Vec<u64>,
    /// Gossip rounds executed.
    pub gossip_rounds: u64,
    /// Delta-batch deliveries (a batch applied at one replica).
    pub merges: u64,
    /// Summed age (seconds since sealing) of delivered batches; divide by
    /// `merges` for the mean merge staleness.
    pub staleness_sum_s: f64,
    /// Each replica's current smoothed load estimate.
    pub load_estimates: Vec<f64>,
}

impl FrontEndStats {
    /// Mean age of a delta batch at delivery, seconds.
    pub fn mean_staleness_s(&self) -> f64 {
        if self.merges == 0 {
            0.0
        } else {
            self.staleness_sum_s / self.merges as f64
        }
    }
}

/// The replicated router tier. See the module docs.
#[derive(Debug, Clone)]
pub struct FrontEnd {
    replicas: Vec<Replica>,
    gossip: GossipConfig,
    latency_alpha: f64,
    gossip_rounds: u64,
    merges: u64,
    staleness_sum_s: f64,
}

impl FrontEnd {
    /// A single-replica front end over the given router — the
    /// pre-refactor topology.
    pub fn new(router: RequestRouter) -> Self {
        Self {
            replicas: vec![Replica::new(router, DEFAULT_LATENCY_ALPHA)],
            gossip: GossipConfig::DEFAULT,
            latency_alpha: DEFAULT_LATENCY_ALPHA,
            gossip_rounds: 0,
            merges: 0,
            staleness_sum_s: 0.0,
        }
    }

    /// Number of router replicas.
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The gossip configuration.
    pub fn gossip_config(&self) -> GossipConfig {
        self.gossip
    }

    /// Replaces the gossip tuning.
    pub fn set_gossip_config(&mut self, config: GossipConfig) {
        self.gossip = config;
    }

    /// Reshapes the tier to `replicas` copies of replica 0's *learned*
    /// state (a scale-out clones the warmed router; a scale-in keeps the
    /// primary), resets the run-scoped counters, and re-arms the
    /// completion-latency EMAs with `latency_alpha`. Call between runs —
    /// never mid-run, or the per-replica decision counts lose meaning.
    pub fn reconfigure(&mut self, replicas: usize, latency_alpha: f64) {
        let replicas = replicas.max(1);
        let mut primary = self.replicas[0].router.clone();
        // The clones all share the primary's posterior already: shipping
        // its pre-clone gossip buffer would double-count that evidence.
        primary.gossip_clear();
        self.replicas = (0..replicas)
            .map(|_| Replica::new(primary.clone(), latency_alpha))
            .collect();
        self.latency_alpha = latency_alpha;
        self.gossip_rounds = 0;
        self.merges = 0;
        self.staleness_sum_s = 0.0;
    }

    /// Starts a fresh run on the existing tier: resets the run-scoped
    /// decision/gossip counters and re-arms the completion-latency EMAs
    /// without touching any replica's learned posterior or load view.
    pub fn begin_run(&mut self, latency_alpha: f64) {
        for replica in &mut self.replicas {
            replica.latency_ema = Ema::new(latency_alpha);
            replica.decisions = 0;
        }
        self.latency_alpha = latency_alpha;
        self.gossip_rounds = 0;
        self.merges = 0;
        self.staleness_sum_s = 0.0;
    }

    /// The replica that owns a request id: `split_mix64(id) % R`.
    pub fn replica_of(&self, id: RequestId) -> usize {
        (split_mix64(id.0) % self.replicas.len() as u64) as usize
    }

    /// Read access to a replica's router (replica 0 is the primary the
    /// single-replica accessors of `IcCacheSystem` expose).
    pub fn router(&self, replica: usize) -> &RequestRouter {
        &self.replicas[replica].router
    }

    /// Mutable access to a replica's router (tests, fault injection).
    pub fn router_mut(&mut self, replica: usize) -> &mut RequestRouter {
        &mut self.replicas[replica].router
    }

    /// Routes a request through its owning replica. Returns the decision
    /// and the replica index that made it.
    pub fn route(
        &mut self,
        request: &Request,
        selection_utilities: &[f64],
        rng: &mut impl Rng,
    ) -> (RouteDecision, usize) {
        let r = self.replica_of(request.id);
        let replica = &mut self.replicas[r];
        replica.decisions += 1;
        (replica.router.route(request, selection_utilities, rng), r)
    }

    /// [`FrontEnd::route`] for a failover *retry* of an already-counted
    /// request: the routing decision is computed identically (same
    /// replica, same bandit state, same RNG stream) but the replica's
    /// decision counter is *not* bumped — a retried request is one
    /// logical request and must appear exactly once in the per-replica
    /// decision stats.
    pub fn route_retry(
        &mut self,
        request: &Request,
        selection_utilities: &[f64],
        rng: &mut impl Rng,
    ) -> (RouteDecision, usize) {
        let r = self.replica_of(request.id);
        let replica = &mut self.replicas[r];
        (replica.router.route(request, selection_utilities, rng), r)
    }

    /// Records an observed reward at the owning replica only.
    pub fn record_reward(
        &mut self,
        model: ModelId,
        request: &Request,
        selection_utilities: &[f64],
        reward: f64,
    ) {
        let r = self.replica_of(request.id);
        self.replicas[r]
            .router
            .record_reward(model, request, selection_utilities, reward);
    }

    /// Records a pairwise preference at the owning replica only.
    pub fn record_preference(
        &mut self,
        request: &Request,
        selection_utilities: &[f64],
        preferred: ModelId,
        other: ModelId,
    ) {
        let r = self.replica_of(request.id);
        self.replicas[r]
            .router
            .record_preference(request, selection_utilities, preferred, other);
    }

    /// Feeds a load observation (requests/second) to every replica — the
    /// legacy single-view path kept for callers outside the event-driven
    /// engine (warm-up loops, experiments driving `serve` directly).
    pub fn observe_load_all(&mut self, rps: f64) {
        for replica in &mut self.replicas {
            replica.router.observe_load(rps);
        }
    }

    /// Feeds an arrival-rate observation to one replica (the engine's
    /// per-replica windowed estimate).
    pub fn observe_arrival_load(&mut self, replica: usize, rps: f64) {
        self.replicas[replica].router.observe_load(rps);
    }

    /// Feeds one completion into a replica's latency EMA and converts it
    /// into a Little's-law demand estimate (`lambda = L / W`, with
    /// `in_system` jobs in flight across the cluster). The single
    /// feedback path shared by the engine's completion handler, its
    /// failover-retry completions, and `serve_without_ic` — they must
    /// not drift apart.
    pub fn observe_completion(&mut self, replica: usize, e2e_s: f64, in_system: u32) {
        let rep = &mut self.replicas[replica];
        rep.latency_ema.observe(e2e_s);
        let w = rep.latency_ema.value();
        if w > 0.0 {
            rep.router.observe_load(f64::from(in_system) / w);
        }
    }

    /// A replica's smoothed load estimate.
    pub fn load_estimate(&self, replica: usize) -> f64 {
        self.replicas[replica].router.current_load()
    }

    /// One gossip round at simulation time `now_s` (no-op with fewer
    /// than two replicas): every replica seals its local bandit delta
    /// (TTL `R - 1`), sends it — together with the still-live batches it
    /// relayed last round — one hop along the ring, and blends its load
    /// estimate toward its ring predecessor's snapshot value. All sends
    /// use round-start snapshots, so the outcome is independent of the
    /// replica iteration order. Returns the round's own merge/staleness
    /// delta (the cumulative counters stay in [`FrontEndStats`]).
    pub fn gossip_round(&mut self, now_s: f64) -> GossipRoundReport {
        let mut round = GossipRoundReport::default();
        let n = self.replicas.len();
        if n < 2 {
            return round;
        }
        self.gossip_rounds += 1;
        let discount = self.gossip.staleness_discount;

        // Snapshot phase: seal fresh deltas and collect each replica's
        // outbox (fresh batch + batches relayed from last round).
        let loads: Vec<f64> = (0..n).map(|i| self.load_estimate(i)).collect();
        let mut outboxes: Vec<Vec<DeltaBatch>> = Vec::with_capacity(n);
        for replica in &mut self.replicas {
            let mut outbox = std::mem::take(&mut replica.inbox);
            if let Some(fresh) = replica.router.gossip_take(now_s, (n - 1) as u32) {
                outbox.push(fresh);
            }
            outboxes.push(outbox);
        }

        // Delivery phase: replica i's outbox lands at (i + 1) % n.
        for (i, outbox) in outboxes.into_iter().enumerate() {
            let dest = (i + 1) % n;
            for batch in outbox {
                self.replicas[dest].router.gossip_apply(&batch, discount);
                round.merges += 1;
                round.staleness_sum_s += (now_s - batch.born_s).max(0.0);
                if let Some(relay) = batch.forwarded(discount) {
                    self.replicas[dest].inbox.push(relay);
                }
            }
        }
        self.merges += round.merges;
        self.staleness_sum_s += round.staleness_sum_s;

        // Load consensus: blend toward the ring predecessor's snapshot.
        let w = self.gossip.load_blend;
        for (i, replica) in self.replicas.iter_mut().enumerate() {
            replica.router.merge_load(loads[(i + n - 1) % n], w);
        }
        round
    }

    /// Run-scoped tier statistics for the report.
    pub fn stats(&self) -> FrontEndStats {
        FrontEndStats {
            replicas: self.replicas.len(),
            decisions: self.replicas.iter().map(|r| r.decisions).collect(),
            gossip_rounds: self.gossip_rounds,
            merges: self.merges,
            staleness_sum_s: self.staleness_sum_s,
            load_estimates: (0..self.replicas.len())
                .map(|i| self.load_estimate(i))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ic_llmsim::Catalog;
    use ic_router::RouterConfig;
    use ic_stats::rng::rng_from_seed;
    use ic_workloads::{Dataset, WorkloadGenerator};

    fn front_end(replicas: usize) -> (FrontEnd, WorkloadGenerator) {
        let catalog = Catalog::standard();
        let small = catalog.by_name("gemma-2-2b").unwrap();
        let large = catalog.by_name("gemma-2-27b").unwrap();
        let router = RequestRouter::new(vec![small, large], &catalog, 64, RouterConfig::default());
        let mut fe = FrontEnd::new(router);
        fe.reconfigure(replicas, DEFAULT_LATENCY_ALPHA);
        (fe, WorkloadGenerator::new(Dataset::MsMarco, 71))
    }

    #[test]
    fn assignment_is_deterministic_and_covers_replicas() {
        let (fe, mut wg) = front_end(4);
        let requests = wg.generate_requests(200);
        let mut seen = [false; 4];
        for r in &requests {
            let a = fe.replica_of(r.id);
            assert_eq!(a, fe.replica_of(r.id), "assignment must be stable");
            seen[a] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 ids should hit all replicas");
        // Single replica owns everything.
        let (fe1, _) = front_end(1);
        assert!(requests.iter().all(|r| fe1.replica_of(r.id) == 0));
    }

    #[test]
    fn feedback_lands_only_at_the_owning_replica() {
        let (mut fe, mut wg) = front_end(3);
        let request = wg.generate_requests(1).pop().unwrap();
        let owner = fe.replica_of(request.id);
        let model = fe.router(0).models()[0];
        fe.record_reward(model, &request, &[], 0.9);
        // The owning replica has a sealed-able gossip buffer; peers not.
        for i in 0..3 {
            let has_delta = fe.router_mut(i).gossip_take(0.0, 2).is_some();
            assert_eq!(has_delta, i == owner, "replica {i}");
        }
    }

    #[test]
    fn gossip_converges_load_estimates() {
        // The convergence acceptance test: replicas with wildly different
        // local load views agree within epsilon after k rounds of ring
        // blending under a steady workload (no new observations).
        let (mut fe, _) = front_end(4);
        for (i, load) in [0.5, 40.0, 10.0, 25.0].iter().enumerate() {
            for _ in 0..100 {
                fe.observe_arrival_load(i, *load);
            }
        }
        let spread = |fe: &FrontEnd| {
            let e: Vec<f64> = (0..4).map(|i| fe.load_estimate(i)).collect();
            let lo = e.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = e.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            hi - lo
        };
        let initial = spread(&fe);
        assert!(initial > 10.0, "views must start apart: {initial}");
        for round in 0..24 {
            fe.gossip_round(round as f64);
        }
        assert!(
            spread(&fe) < 0.05 * initial,
            "gossip must converge load views: {} -> {}",
            initial,
            spread(&fe)
        );
        assert_eq!(fe.stats().gossip_rounds, 24);
    }

    #[test]
    fn gossip_spreads_bandit_evidence_to_every_peer() {
        let (mut fe, mut wg) = front_end(3);
        let requests = wg.generate_requests(60);
        let large = fe.router(0).models()[1];
        // Only owning replicas learn.
        for r in &requests {
            fe.record_reward(large, r, &[], 0.95);
        }
        let local: Vec<u64> = (0..3).map(|i| fe.router(i).arm_pulls(large)).collect();
        assert!(
            local.iter().filter(|&&p| p > 0).count() >= 2,
            "60 ids should give several replicas local evidence: {local:?}"
        );
        assert!(local.iter().any(|&p| p < 60), "no replica saw everything");
        // Two rounds move every batch TTL=2 hops: all peers visited.
        fe.gossip_round(1.0);
        fe.gossip_round(2.0);
        let stats = fe.stats();
        assert!(stats.merges >= 3, "batches must be delivered: {stats:?}");
        assert!(stats.staleness_sum_s > 0.0, "relayed batches aged a round");
        assert!(stats.mean_staleness_s() > 0.0);
        // Every replica's posterior now carries the full 60 updates even
        // though only owners learned locally (pull counts travel raw;
        // the statistics themselves arrive staleness-discounted).
        for i in 0..3 {
            assert_eq!(
                fe.router(i).arm_pulls(large),
                60,
                "replica {i} missed gossiped evidence"
            );
        }
    }

    #[test]
    fn single_replica_gossip_is_a_no_op() {
        let (mut fe, mut wg) = front_end(1);
        let request = wg.generate_requests(1).pop().unwrap();
        let model = fe.router(0).models()[0];
        fe.record_reward(model, &request, &[], 0.5);
        fe.gossip_round(1.0);
        let stats = fe.stats();
        assert_eq!(stats.gossip_rounds, 0);
        assert_eq!(stats.merges, 0);
        assert_eq!(stats.replicas, 1);
    }

    #[test]
    fn observe_completion_drives_the_load_estimate() {
        let (mut fe, _) = front_end(2);
        // 10 jobs in flight at 2s latency: lambda = 5 rps at replica 0.
        fe.observe_completion(0, 2.0, 10);
        assert!((fe.load_estimate(0) - 5.0).abs() < 1e-9);
        assert_eq!(fe.load_estimate(1), 0.0, "peer untouched");
        // The EMA smooths subsequent observations.
        fe.observe_completion(0, 4.0, 10);
        let est = fe.load_estimate(0);
        assert!(est < 5.0 && est > 2.5, "smoothed estimate: {est}");
    }

    #[test]
    fn reconfigure_clones_learned_state_and_resets_counters() {
        let (mut fe, mut wg) = front_end(1);
        let requests = wg.generate_requests(30);
        let large = fe.router(0).models()[1];
        for r in &requests {
            fe.record_reward(large, r, &[], 0.9);
        }
        let mut rng = rng_from_seed(5);
        let (_, replica) = fe.route(&requests[0], &[], &mut rng);
        assert_eq!(replica, 0);
        assert_eq!(fe.stats().decisions, vec![1]);
        fe.reconfigure(3, 0.2);
        assert_eq!(fe.num_replicas(), 3);
        assert_eq!(fe.stats().decisions, vec![0, 0, 0], "counters reset");
        for i in 1..3 {
            assert_eq!(
                fe.router(i).models(),
                fe.router(0).models(),
                "replica {i} must clone the primary"
            );
        }
    }
}
