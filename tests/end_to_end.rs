//! Cross-crate integration tests: the full IC-Cache pipeline exercised
//! through the public API, spanning workloads → selector → router →
//! manager → llmsim → serving → judge.

use ic_cache::{IcCacheClient, IcCacheConfig, IcCacheSystem};
use ic_engine::{EngineConfig, EventDrivenEngine, ServingEngine};
use ic_judge::{Autorater, PairwiseEval};
use ic_llmsim::{GenSetup, Generator, ModelSpec};
use ic_serving::{ClusterSim, JobId, JobSpec, PoolConfig, ServingMetrics};
use ic_stats::rng::rng_from_seed;
use ic_workloads::{Dataset, WorkloadGenerator, fixed_qps_arrivals};

fn seeded_system(
    dataset: Dataset,
    n_examples: usize,
    seed: u64,
) -> (IcCacheSystem, WorkloadGenerator) {
    let config = IcCacheConfig::gemma_pair();
    let large = config.primary;
    let large_spec = config.catalog.get(large).clone();
    let mut wg = WorkloadGenerator::sized(dataset, seed, n_examples);
    let examples = wg.generate_examples(n_examples, &large_spec, large, &Generator::new());
    let mut system = IcCacheSystem::new(config);
    system.seed_examples(examples, 0.0);
    (system, wg)
}

#[test]
fn ic_cache_beats_bare_small_model_on_quality() {
    let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 3_000, 1001);
    // Warm up the learning components.
    for r in wg.generate_requests(500) {
        let _ = system.serve(&r);
    }
    // Paired evaluation on fresh traffic with common random numbers.
    let requests = wg.generate_requests(250);
    let sim = Generator::new();
    let small = ModelSpec::gemma_2_2b();
    let mut rng_a = rng_from_seed(7);
    let mut rng_b = rng_from_seed(7);
    let mut q_ic = Vec::new();
    let mut q_bare = Vec::new();
    for r in &requests {
        let sel = system.with_selection(r);
        let refs = sel.resolve(system.manager().cache());
        q_ic.push(
            sim.generate(&small, r, &GenSetup::with_examples(refs), &mut rng_a)
                .quality,
        );
        q_bare.push(
            sim.generate(&small, r, &GenSetup::bare(), &mut rng_b)
                .quality,
        );
    }
    let judge = Autorater::standard();
    let mut eval = PairwiseEval::new();
    let mut rng = rng_from_seed(8);
    for (a, b) in q_ic.iter().zip(&q_bare) {
        eval.record(judge.score_balanced(*a, *b, 8, &mut rng));
    }
    assert!(
        eval.win_rate() > 0.55,
        "IC selection should beat bare small generations: {}",
        eval.win_rate()
    );
}

#[test]
fn full_client_lifecycle_with_maintenance() {
    let config = IcCacheConfig::gemma_pair();
    let large = config.primary;
    let large_spec = config.catalog.get(large).clone();
    let client = IcCacheClient::new(config);
    let mut wg = WorkloadGenerator::sized(Dataset::Alpaca, 1002, 800);
    client.seed_examples(wg.generate_examples(800, &large_spec, large, &Generator::new()));

    for _ in 0..4 {
        let requests = wg.generate_requests(40);
        let responses = client.generate(&requests);
        client.update_cache(&requests, &responses);
        client.advance_clock(3600.0);
        let _ = client.run_maintenance();
    }
    assert!(
        client.cached_examples() > 800,
        "cache should grow with traffic"
    );
    client.stop();
}

#[test]
fn offloading_reduces_cluster_latency_under_load() {
    // The headline mechanism end-to-end: identical traffic, a 16-GPU
    // cluster; IC-Cache through the unified event-driven engine vs an
    // always-large replay of the same requests.
    let (mut system, mut wg) = seeded_system(Dataset::MsMarco, 2_000, 1003);
    for r in wg.generate_requests(400) {
        let _ = system.serve(&r);
    }
    let arrivals = fixed_qps_arrivals(2.0, 400.0, 1004);
    let requests = wg.generate_requests(arrivals.len());
    let sim = Generator::new();
    let large_spec = ModelSpec::gemma_2_27b();
    let mut rng = rng_from_seed(9);

    // IC-Cache path: selection, routing, continuous batching and load
    // feedback all inside the engine's simulation clock.
    let mut engine = EventDrivenEngine::new(system, EngineConfig::default());
    let ic_report = engine.serve_workload(&requests, &arrivals);
    assert!(
        ic_report.cache.shards >= 2,
        "engine must run a sharded cache"
    );

    // Baseline: every request on a 16-GPU large-model cluster.
    let mut large_jobs = Vec::new();
    for (i, (r, &at)) in requests.iter().zip(&arrivals).enumerate() {
        let lo = sim.generate(&large_spec, r, &GenSetup::bare(), &mut rng);
        large_jobs.push(JobSpec {
            id: JobId(i as u64),
            pool: 0,
            arrival: ic_desim::SimTime::from_secs_f64(at),
            ttft_secs: lo.latency.ttft,
            decode_secs: lo.latency.decode,
            prefill_tokens: lo.input_tokens,
            decode_tokens: lo.output_tokens,
            priority: 0,
            share: None,
        });
    }
    let mut large_only = ClusterSim::new(vec![PoolConfig::for_gpus(
        "large",
        16,
        large_spec.gpus_per_replica,
        8,
    )]);
    let large_metrics = ServingMetrics::from_results(&large_only.run(large_jobs));
    assert!(
        ic_report.latency.mean_e2e < large_metrics.mean_e2e() * 0.75,
        "IC-Cache should cut mean latency by >25%: {:.2}s vs {:.2}s",
        ic_report.latency.mean_e2e,
        large_metrics.mean_e2e()
    );
}

#[test]
fn engine_runs_are_byte_identical_given_a_seed() {
    // The acceptance bar for the unified engine: same seed, same
    // workload, >= 2 cache shards, continuous batching on, and two runs
    // produce byte-identical serialized metrics.
    let run = || {
        let (system, mut wg) = seeded_system(Dataset::MsMarco, 800, 1007);
        let arrivals = fixed_qps_arrivals(3.0, 120.0, 1008);
        let requests = wg.generate_requests(arrivals.len());
        let config = EngineConfig::default();
        assert!(config.slots_per_replica > 1, "continuous batching enabled");
        let mut engine = EventDrivenEngine::new(system, config);
        let report = engine.serve_workload(&requests, &arrivals);
        assert!(report.cache.shards >= 2);
        (report.served, report.offloaded, report.to_json())
    };
    let (served_a, offloaded_a, json_a) = run();
    let (served_b, offloaded_b, json_b) = run();
    assert_eq!(served_a, served_b);
    assert_eq!(offloaded_a, offloaded_b);
    assert_eq!(json_a, json_b, "metrics output must be byte-identical");
}

#[test]
fn engine_feedback_loop_sheds_load_when_saturated() {
    // Completion latency feeds the router's load estimate: past cluster
    // capacity, offloading must rise without any external load oracle.
    let offload_at = |qps: f64, duration: f64| {
        let (system, mut wg) = seeded_system(Dataset::MsMarco, 800, 1009);
        let arrivals = fixed_qps_arrivals(qps, duration, 1010);
        let requests = wg.generate_requests(arrivals.len());
        let mut engine = EventDrivenEngine::new(system, EngineConfig::default());
        engine.serve_workload(&requests, &arrivals).offload_ratio()
    };
    let calm = offload_at(0.2, 240.0);
    let saturated = offload_at(10.0, 120.0);
    assert!(
        saturated > calm,
        "saturation should raise offloading: {calm} vs {saturated}"
    );
}

#[test]
fn failover_keeps_serving_through_component_failures() {
    let (mut system, mut wg) = seeded_system(Dataset::NaturalQuestions, 600, 1005);
    let requests = wg.generate_requests(60);
    // Healthy phase.
    for r in &requests[..20] {
        let _ = system.serve(r);
    }
    // Selector dies: requests still served (bare).
    system.failover_mut().report_selector_failure();
    for r in &requests[20..40] {
        let out = system.serve(r);
        assert!(out.selection.ids.is_empty());
        assert!((0.0..=1.0).contains(&out.outcome.quality));
    }
    // Daemon probes bring it back; router dies next.
    system.failover_mut().probe_tick();
    system.failover_mut().probe_tick();
    system.failover_mut().probe_tick();
    system.failover_mut().report_router_failure();
    let primary = system.config().primary;
    for r in &requests[40..] {
        let out = system.serve(r);
        assert_eq!(out.model, primary, "router bypass must hit the primary");
    }
    assert_eq!(system.served(), 60);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        let (mut system, mut wg) = seeded_system(Dataset::Alpaca, 400, 1006);
        let requests = wg.generate_requests(50);
        requests
            .iter()
            .map(|r| {
                let o = system.serve(r);
                (o.model, o.offloaded, (o.outcome.quality * 1e9) as i64)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same seed must replay identically");
}
