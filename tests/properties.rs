//! Cross-crate property-based tests on system invariants.

use ic_cache::{IcCacheConfig, IcCacheSystem};
use ic_desim::SimTime;
use ic_embed::Embedding;
use ic_engine::{EngineConfig, EventDrivenEngine, ServingEngine};
use ic_llmsim::{GenSetup, Generator, ModelSpec, Request, RequestId, SkillMix, TaskKind};
use ic_serving::{ClusterSim, JobId, JobSpec, ModelPool, PoolConfig};
use ic_stats::rng::rng_from_seed;
use ic_vecindex::{FlatIndex, IvfConfig, IvfIndex, VectorIndex};
use ic_workloads::{Dataset, WorkloadGenerator, fixed_qps_arrivals};
use proptest::prelude::*;

fn arb_unit_embedding(dim: usize) -> impl Strategy<Value = Embedding> {
    proptest::collection::vec(-1.0f32..1.0, dim).prop_map(|v| {
        let e = Embedding::from_vec(v).normalized();
        if e.norm() < 0.5 {
            // Degenerate all-zero draw: replace with a basis vector.
            let mut basis = vec![0.0f32; e.dim()];
            basis[0] = 1.0;
            Embedding::from_vec(basis)
        } else {
            e
        }
    })
}

fn request_with(difficulty: f64, tokens: u32, latent: Embedding) -> Request {
    Request {
        id: RequestId(0),
        topic: 0,
        embedding: latent.clone(),
        latent,
        difficulty,
        complexity_signal: difficulty,
        skills: SkillMix::uniform(),
        task: TaskKind::Conversation,
        input_tokens: tokens,
        target_output_tokens: tokens.max(8),
        text: String::new(),
        sensitive: false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generation output is always well-formed, whatever the inputs.
    #[test]
    fn generation_is_always_well_formed(
        difficulty in 0.0f64..1.0,
        tokens in 1u32..2_000,
        seed in 0u64..1_000,
    ) {
        let sim = Generator::new();
        let mut rng = rng_from_seed(seed);
        let latent = Embedding::gaussian(16, 1.0, &mut rng).normalized();
        let r = request_with(difficulty, tokens, latent);
        for spec in [ModelSpec::gemma_2_2b(), ModelSpec::deepseek_r1()] {
            let out = sim.generate(&spec, &r, &GenSetup::bare(), &mut rng);
            prop_assert!((0.0..=1.0).contains(&out.quality));
            prop_assert!(out.output_tokens >= 1);
            prop_assert!(out.input_tokens >= tokens);
            prop_assert!(out.latency.ttft > 0.0);
            prop_assert!(out.latency.decode > 0.0);
        }
    }

    /// Harder requests never have higher expected base quality.
    #[test]
    fn base_quality_is_monotone_in_difficulty(
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let sim = Generator::new();
        let mut rng = rng_from_seed(1);
        let latent = Embedding::gaussian(8, 1.0, &mut rng).normalized();
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let spec = ModelSpec::gemma_2_27b();
        let q_easy = sim.base_quality(&spec, &request_with(lo, 50, latent.clone()));
        let q_hard = sim.base_quality(&spec, &request_with(hi, 50, latent));
        prop_assert!(q_easy >= q_hard);
    }

    /// IVF search results are a subset of the item universe, sorted by
    /// similarity, and never contain duplicates.
    #[test]
    fn ivf_search_is_sorted_and_unique(
        vectors in proptest::collection::vec(arb_unit_embedding(8), 1..120),
        k in 1usize..20,
    ) {
        let mut ivf = IvfIndex::new(IvfConfig::default());
        let mut flat = FlatIndex::new();
        for (i, v) in vectors.iter().enumerate() {
            ivf.insert(i as u64, v.clone());
            flat.insert(i as u64, v.clone());
        }
        let q = &vectors[0];
        let hits = ivf.search(q, k);
        prop_assert!(hits.len() <= k.min(vectors.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].similarity >= w[1].similarity);
        }
        let mut ids: Vec<u64> = hits.iter().map(|h| h.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
        // The top hit of an exact query is the query itself.
        prop_assert_eq!(flat.search(q, 1)[0].id, 0);
    }

    /// More in-context examples never lengthen decoding (the shortening
    /// factor applies once) and never shrink the prompt.
    #[test]
    fn examples_grow_prompt_monotonically(n_examples in 0usize..6) {
        let sim = Generator::new();
        let mut rng = rng_from_seed(42);
        let mut wl = ic_workloads::WorkloadGenerator::sized(
            ic_workloads::Dataset::MsMarco, 5, 500);
        let examples = wl.generate_examples(
            6,
            &ModelSpec::gemma_2_27b(),
            ic_llmsim::ModelId(0),
            &sim,
        );
        let request = wl.generate_requests(1).pop().expect("one request");
        let refs: Vec<&ic_llmsim::Example> = examples.iter().take(n_examples).collect();
        let with_n = sim.generate(
            &ModelSpec::gemma_2_2b(), &request, &GenSetup::with_examples(refs), &mut rng);
        let bare = sim.generate(
            &ModelSpec::gemma_2_2b(), &request, &GenSetup::bare(), &mut rng);
        if n_examples > 0 {
            prop_assert!(with_n.input_tokens > bare.input_tokens);
        } else {
            prop_assert_eq!(with_n.input_tokens, bare.input_tokens);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The iteration-level (token-step) scheduler and the legacy
    /// occupancy-stretch estimate agree for a single job at zero load:
    /// prefill chunks sum to exactly `ttft_secs` and decode tokens to
    /// `decode_secs * (1 + beta / total_slots)`, whatever the chunk
    /// size, token counts, or slot count.
    #[test]
    fn iteration_model_matches_occupancy_stretch_at_zero_load(
        ttft in 0.01f64..2.0,
        decode in 0.05f64..10.0,
        ptoks in 1u32..2_000,
        dtoks in 1u32..500,
        chunk in 0u32..512,
        beta in 0.0f64..1.0,
        slots in 1u32..32,
    ) {
        let cfg = PoolConfig {
            name: "p".into(),
            replicas: 1,
            slots_per_replica: slots,
            congestion_beta: beta,
            prefill_chunk_tokens: chunk,
            preempt_decode_quantum: 0,
            max_queue: None,
            // KV on at the for_gpus default budget: a single job at
            // zero load never triggers pressure, so the iteration
            // model must still match the occupancy-stretch estimate.
            ..PoolConfig::default()
        };
        let job = JobSpec {
            id: JobId(0),
            pool: 0,
            arrival: SimTime::ZERO,
            ttft_secs: ttft,
            decode_secs: decode,
            prefill_tokens: ptoks,
            decode_tokens: dtoks,
            priority: 0,
            share: None,
        };
        let expected = ModelPool::new(cfg.clone()).service_secs(&job);
        let mut cluster = ClusterSim::new(vec![cfg]);
        let results = cluster.run(vec![job]);
        prop_assert_eq!(results.len(), 1);
        let got = results[0].e2e_secs();
        // Each iteration is rounded to a whole microsecond when
        // scheduled, so allow up to 1us of drift per token step.
        let n_steps = u64::from(dtoks) + u64::from(ptoks.div_ceil(chunk.max(1)));
        let tol = n_steps as f64 * 1e-6 + 1e-9;
        prop_assert!(
            (got - expected).abs() <= tol,
            "iteration model {} vs occupancy-stretch {} (tol {})",
            got, expected, tol
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// KV blocks are conserved across the full scheduler lifecycle —
    /// admission alloc, growth alloc, quantum eviction, pressure
    /// swap-out, resume re-alloc, retire free — for arbitrary job
    /// mixes over arbitrarily tight budgets: every job completes with
    /// its exact token budget executed, every allocated block is freed
    /// (the allocator panics on double frees), and the pool ends
    /// empty. Covers budgets smaller than one prefill chunk and
    /// watermarks equal to the budget.
    #[test]
    fn kv_blocks_conserved_across_preempt_swap_resume(
        n_jobs in 1usize..10,
        slots in 1u32..6,
        block_tokens in 1u32..24,
        budget in 1u32..40,
        quantum in 0u32..6,
        chunk in 0u32..64,
        high_tenths in 5u32..11,
        ptoks in 1u32..300,
        dtoks in 0u32..60,
    ) {
        let cfg = PoolConfig {
            name: "p".into(),
            replicas: 1,
            slots_per_replica: slots,
            congestion_beta: 0.3,
            prefill_chunk_tokens: chunk,
            preempt_decode_quantum: quantum,
            max_queue: None,
            kv_block_tokens: block_tokens,
            kv_budget_blocks: budget,
            // high == low exercises the degenerate watermark pair up
            // to and including watermarks equal to the whole budget.
            kv_watermarks: ic_serving::Watermarks::new(
                f64::from(high_tenths) / 10.0,
                f64::from(high_tenths) / 10.0,
            ),
            kv_swap: ic_serving::SwapModel::Swap {
                out_secs_per_block: 1e-4,
                in_secs_per_block: 1e-4,
            }
            .into(),
            kv_share: false,
        };
        let jobs: Vec<JobSpec> = (0..n_jobs as u64)
            .map(|i| JobSpec {
                id: JobId(i),
                pool: 0,
                arrival: SimTime::from_secs_f64(i as f64 * 0.01),
                ttft_secs: 0.05,
                decode_secs: 0.4,
                // Vary sizes across jobs deterministically.
                prefill_tokens: ptoks + (i as u32 * 37) % 200,
                decode_tokens: dtoks + (i as u32 * 13) % 40,
                priority: 0,
                share: None,
            })
            .collect();
        let total_decode: u64 = jobs.iter().map(|j| u64::from(j.decode_tokens)).sum();
        let mut cluster = ClusterSim::new(vec![cfg]);
        let results = cluster.run(jobs);
        prop_assert_eq!(results.len(), n_jobs, "every job completes");
        let kv = cluster.kv_stats();
        prop_assert_eq!(kv.allocs, kv.frees, "no leaked or double-freed blocks");
        prop_assert!(kv.peak_blocks <= kv.total_blocks);
        prop_assert_eq!(
            cluster.iter_stats().decode_steps, total_decode,
            "preempt/swap/resume must not lose or repeat tokens"
        );
        prop_assert_eq!(cluster.pool(0).active(), 0);
        prop_assert_eq!(cluster.pool(0).swapped_len(), 0);
        prop_assert_eq!(cluster.pool(0).queue_len(), 0);
    }

    /// The same full preempt→swap→resume lifecycle with shared-prefix
    /// KV reuse on and every job carrying one of a few example sets:
    /// mapping, copy-on-write divergence, and refcounted swap-outs must
    /// preserve the exact conservation guarantees of the private
    /// allocator — every job completes with its exact token budget,
    /// physical allocs == physical frees, no block or host-ledger
    /// residue — and no sequence may ever be stranded by a co-reader's
    /// eviction. Saved blocks only ever reduce the allocation count.
    #[test]
    fn shared_kv_blocks_conserved_across_preempt_swap_resume(
        n_jobs in 2usize..10,
        slots in 1u32..6,
        block_tokens in 1u32..24,
        budget in 2u32..40,
        quantum in 0u32..6,
        chunk in 0u32..64,
        high_tenths in 5u32..11,
        ptoks in 1u32..300,
        dtoks in 0u32..60,
        n_sets in 1u64..4,
    ) {
        let cfg = PoolConfig {
            name: "p".into(),
            replicas: 1,
            slots_per_replica: slots,
            congestion_beta: 0.3,
            prefill_chunk_tokens: chunk,
            preempt_decode_quantum: quantum,
            max_queue: None,
            kv_block_tokens: block_tokens,
            kv_budget_blocks: budget,
            kv_watermarks: ic_serving::Watermarks::new(
                f64::from(high_tenths) / 10.0,
                f64::from(high_tenths) / 10.0,
            ),
            kv_swap: ic_serving::SwapModel::Swap {
                out_secs_per_block: 1e-4,
                in_secs_per_block: 1e-4,
            }
            .into(),
            kv_share: true,
        };
        let jobs: Vec<JobSpec> = (0..n_jobs as u64)
            .map(|i| {
                let prefill = ptoks + (i as u32 * 37) % 200;
                let set = i % n_sets;
                JobSpec {
                    id: JobId(i),
                    pool: 0,
                    arrival: SimTime::from_secs_f64(i as f64 * 0.01),
                    ttft_secs: 0.05,
                    decode_secs: 0.4,
                    prefill_tokens: prefill,
                    decode_tokens: dtoks + (i as u32 * 13) % 40,
                    priority: 0,
                    // One shared prefix per set, identical token count
                    // across its carriers (as the engine guarantees),
                    // covering part or occasionally all of the prompt.
                    share: Some(ic_serving::SharedPrefix {
                        set,
                        tokens: (1 + (set as u32 * 53) % 97).min(prefill),
                    }),
                }
            })
            .collect();
        let total_decode: u64 = jobs.iter().map(|j| u64::from(j.decode_tokens)).sum();
        let mut cluster = ClusterSim::new(vec![cfg]);
        let results = cluster.run(jobs);
        prop_assert_eq!(results.len(), n_jobs, "every job completes");
        let kv = cluster.kv_stats();
        prop_assert_eq!(kv.allocs, kv.frees, "no leaked or double-freed blocks");
        prop_assert!(kv.peak_blocks <= kv.total_blocks);
        prop_assert_eq!(
            cluster.iter_stats().decode_steps, total_decode,
            "shared preempt/swap/resume must not lose or repeat tokens"
        );
        prop_assert_eq!(cluster.pool(0).active(), 0);
        prop_assert_eq!(cluster.pool(0).swapped_len(), 0);
        prop_assert_eq!(cluster.pool(0).queue_len(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Running the event-driven engine twice with the same seed produces
    /// identical served/offloaded counts and latency percentiles —
    /// byte-identical serialized metrics, across arbitrary seeds and
    /// offered loads.
    #[test]
    fn event_driven_engine_is_deterministic(
        seed in 0u64..10_000,
        qps_deci in 5u64..60,
    ) {
        let run = || {
            let config = IcCacheConfig::gemma_pair();
            let large = config.primary;
            let large_spec = config.catalog.get(large).clone();
            let mut wg = WorkloadGenerator::sized(Dataset::MsMarco, seed, 300);
            let examples =
                wg.generate_examples(300, &large_spec, large, &Generator::new());
            let mut system = IcCacheSystem::new(config);
            system.seed_examples(examples, 0.0);
            let arrivals = fixed_qps_arrivals(qps_deci as f64 / 10.0, 60.0, seed ^ 0xA11);
            let requests = wg.generate_requests(arrivals.len());
            let mut engine = EventDrivenEngine::new(system, EngineConfig::default());
            let report = engine.serve_workload(&requests, &arrivals);
            (
                report.served,
                report.offloaded,
                report.latency.p50_e2e.to_bits(),
                report.latency.p99_e2e.to_bits(),
                report.to_json(),
            )
        };
        let (served_a, off_a, p50_a, p99_a, json_a) = run();
        let (served_b, off_b, p50_b, p99_b, json_b) = run();
        prop_assert_eq!(served_a, served_b);
        prop_assert_eq!(off_a, off_b);
        prop_assert_eq!(p50_a, p50_b, "p50 must replay bit-identically");
        prop_assert_eq!(p99_a, p99_b, "p99 must replay bit-identically");
        prop_assert_eq!(json_a, json_b);
    }
}
