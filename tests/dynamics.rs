//! §8 dynamics: query-distribution drift, model updates, and the
//! auto-scaling signal, exercised end-to-end.

use ic_cache::{IcCacheConfig, IcCacheSystem};
use ic_llmsim::Generator;
use ic_router::{AutoscaleSignal, ScaleAdvice};
use ic_stats::rng::rng_from_seed;
use ic_workloads::{Dataset, DriftingWorkload, WorkloadGenerator};

fn drifting_system() -> (IcCacheSystem, DriftingWorkload) {
    let config = IcCacheConfig::gemma_pair();
    let large = config.primary;
    let large_spec = config.catalog.get(large).clone();
    let mut wg = WorkloadGenerator::sized(Dataset::MsMarco, 2001, 3_000);
    let examples = wg.generate_examples(3_000, &large_spec, large, &Generator::new());
    let mut system = IcCacheSystem::new(config);
    system.seed_examples(examples, 0.0);
    (system, DriftingWorkload::new(wg, 1.0))
}

#[test]
fn system_keeps_serving_through_topic_drift() {
    // The example bank was built at drift progress 0; the request stream
    // rotates away from it. The system must degrade gracefully (never
    // crash, never produce out-of-range quality) and keep updating the
    // cache with fresh topics so late-phase requests find fresh examples.
    let (mut system, mut drift) = drifting_system();
    let mut rng = rng_from_seed(2002);
    let mut phase_quality = [0.0f64; 3];
    let mut phase_counts = [0usize; 3];
    for step in 0..600 {
        let t = step as f64 / 600.0;
        let r = drift.generate_at(t, &mut rng);
        let out = system.serve(&r);
        assert!((0.0..=1.0).contains(&out.outcome.quality));
        // Fresh pairs enter the cache, as the Example Manager's §8 answer
        // to drift prescribes.
        system.update_cache(&r, &out.outcome, out.model, t * 3600.0);
        let phase = (t * 3.0) as usize;
        phase_quality[phase.min(2)] += out.outcome.quality;
        phase_counts[phase.min(2)] += 1;
    }
    for (q, c) in phase_quality.iter().zip(&phase_counts) {
        let mean = q / *c as f64;
        assert!(
            mean > 0.45,
            "quality collapsed during drift: phase mean {mean}"
        );
    }
    assert!(
        system.cached_examples() > 3_000,
        "cache should absorb fresh-topic pairs"
    );
}

#[test]
fn autoscale_signal_fires_only_under_sustained_overload() {
    let (mut system, mut drift) = drifting_system();
    let mut rng = rng_from_seed(2003);
    let mut signal = AutoscaleSignal::standard();
    // Calm phase: well under the large fleet's capacity.
    for _ in 0..150 {
        system.observe_load(0.3);
        let r = drift.generate_at(0.0, &mut rng);
        let out = system.serve(&r);
        signal.observe(out.applied_bias);
    }
    assert_ne!(
        signal.advice(),
        ScaleAdvice::ScaleOut,
        "calm traffic must not trip scale-out"
    );
    // Sustained overload: bias persists, the §4.2 auto-scaling signal.
    for _ in 0..300 {
        system.observe_load(12.0);
        let r = drift.generate_at(0.1, &mut rng);
        let out = system.serve(&r);
        signal.observe(out.applied_bias);
    }
    assert_eq!(signal.advice(), ScaleAdvice::ScaleOut);
    assert!(signal.persistent_bias() > 0.4);
}

#[test]
fn model_upgrade_is_probed_by_the_router() {
    // §8 "Handling Model Updates": register a new model mid-run; the
    // bandit's exploration must route some traffic to it without any
    // offline retraining.
    let config = IcCacheConfig::gemma_pair();
    let catalog = config.catalog.clone();
    let small = config.offload_models()[0];
    let large = config.primary;
    let mut router = ic_router::RequestRouter::new(
        vec![small, large],
        &catalog,
        64,
        ic_router::RouterConfig::default(),
    );
    let mut wg = WorkloadGenerator::sized(Dataset::Alpaca, 2004, 500);
    let mut rng = rng_from_seed(2005);
    for r in wg.generate_requests(200) {
        let d = router.route(&r, &[], &mut rng);
        router.record_reward(d.chosen, &r, &[], 0.6);
    }
    // Upgrade: a new mid-size model joins the fleet.
    let newcomer = catalog.by_name("gemini-1.5-flash").expect("exists");
    router.add_model(newcomer, &catalog);
    let mut newcomer_picks = 0usize;
    for r in wg.generate_requests(300) {
        let d = router.route(&r, &[], &mut rng);
        if d.chosen == newcomer {
            newcomer_picks += 1;
            router.record_reward(d.chosen, &r, &[], 0.9);
        } else {
            router.record_reward(d.chosen, &r, &[], 0.6);
        }
    }
    assert!(
        newcomer_picks > 30,
        "exploration should probe the upgraded model: {newcomer_picks}/300"
    );
}
